package experiments

import (
	"testing"

	"repro/internal/policy"
)

// smallCase returns a scaled-down case study that keeps test time low
// while preserving queueing pressure (jobs arrive faster than the cloud
// drains them).
func smallCase() *CaseStudy {
	cs := Default()
	cs.Workload.N = 60
	cs.Workload.Seed = 3
	cs.TrainSteps = 2048
	cs.PPO.NSteps = 512
	cs.PPO.BatchSize = 64
	cs.PPO.NEpochs = 3
	return cs
}

func TestRunModeUnknown(t *testing.T) {
	if _, err := smallCase().RunMode("warp"); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

// TestPolicyForPassesSimulationPhi: registry-built policies receive the
// case study's configured φ, so a phi-sweep over a fidelity-predictive
// mode (oracle) scores allocations with the same penalty the
// simulation applies — including the swept value on task snapshots.
func TestPolicyForPassesSimulationPhi(t *testing.T) {
	cs := smallCase()
	cs.Core.Phi = 0.88
	pol, err := cs.policyFor("oracle")
	if err != nil {
		t.Fatal(err)
	}
	if o, ok := pol.(policy.Oracle); !ok || o.Phi != 0.88 {
		t.Fatalf("oracle policy = %#v, want the simulation's Phi 0.88", pol)
	}
}

func TestRunModeCompletesAllJobs(t *testing.T) {
	cs := smallCase()
	for _, mode := range []string{"speed", "fair", "fidelity"} {
		run, err := cs.RunMode(mode)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if run.Results.JobsFinished != 60 {
			t.Fatalf("%s: finished %d of 60", mode, run.Results.JobsFinished)
		}
		if len(run.Fidelities) != 60 {
			t.Fatalf("%s: %d fidelity samples", mode, len(run.Fidelities))
		}
		if run.Results.Policy != mode {
			t.Fatalf("%s: results labeled %q", mode, run.Results.Policy)
		}
	}
}

func TestTable2ShapeMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full case-study shape test")
	}
	cs := smallCase()
	cs.Workload.N = 150
	rows, err := cs.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byMode := map[string]int{}
	for i, r := range rows {
		byMode[r.Policy] = i
	}
	speed := rows[byMode["speed"]]
	fid := rows[byMode["fidelity"]]
	fair := rows[byMode["fair"]]
	rlr := rows[byMode["rlbase"]]

	// Paper Table 2 shape assertions.
	if !(fid.FidelityMean > speed.FidelityMean &&
		fid.FidelityMean > fair.FidelityMean &&
		fid.FidelityMean > rlr.FidelityMean) {
		t.Errorf("fidelity mode should win on fidelity: %+v", rows)
	}
	if !(rlr.FidelityMean < speed.FidelityMean && rlr.FidelityMean < fair.FidelityMean) {
		t.Errorf("rlbase should have the lowest fidelity: rl=%.4f speed=%.4f fair=%.4f",
			rlr.FidelityMean, speed.FidelityMean, fair.FidelityMean)
	}
	if ratio := fid.TotalSimTime / speed.TotalSimTime; ratio < 1.5 || ratio > 6 {
		t.Errorf("fidelity/speed Tsim ratio = %.2f, want the paper's ~2-3x regime", ratio)
	}
	if !(fid.TotalCommTime < speed.TotalCommTime && fid.TotalCommTime < fair.TotalCommTime &&
		fid.TotalCommTime < rlr.TotalCommTime) {
		t.Errorf("fidelity mode should have the lowest comm: %+v", rows)
	}
	if !(rlr.TotalCommTime > speed.TotalCommTime && rlr.TotalCommTime > fair.TotalCommTime) {
		t.Errorf("rlbase should have the highest comm: rl=%.0f speed=%.0f fair=%.0f",
			rlr.TotalCommTime, speed.TotalCommTime, fair.TotalCommTime)
	}
	// Speed and fair form a close middle cluster on runtime.
	if speed.TotalSimTime > 1.3*fair.TotalSimTime || fair.TotalSimTime > 1.3*speed.TotalSimTime {
		t.Errorf("speed (%.0f) and fair (%.0f) Tsim should be close",
			speed.TotalSimTime, fair.TotalSimTime)
	}
}

func TestTrainRLCachesPolicy(t *testing.T) {
	cs := smallCase()
	p1, h1, err := cs.TrainRL(nil)
	if err != nil {
		t.Fatal(err)
	}
	p2, h2, err := cs.TrainRL(nil)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 || len(h1) != len(h2) {
		t.Fatal("TrainRL should cache the trained policy")
	}
}

func TestUseTrainedPolicySkipsTraining(t *testing.T) {
	cs := smallCase()
	donor := smallCase()
	pol, _, err := donor.TrainRL(nil)
	if err != nil {
		t.Fatal(err)
	}
	cs.UseTrainedPolicy(pol)
	run, err := cs.RunMode("rlbase")
	if err != nil {
		t.Fatal(err)
	}
	if run.Results.JobsFinished != 60 {
		t.Fatalf("finished %d", run.Results.JobsFinished)
	}
}

func TestFig5SeriesShape(t *testing.T) {
	cs := smallCase()
	cs.TrainSteps = 4 * 512
	_, hist, err := cs.TrainRL(nil)
	if err != nil {
		t.Fatal(err)
	}
	reward, entropy := Fig5Series(hist)
	if len(reward.X) != len(hist) || len(entropy.X) != len(hist) {
		t.Fatal("series lengths wrong")
	}
	// Initial entropy loss for a fresh 5-dim Gaussian is ≈ −7.09 — the
	// paper's Fig. 5 starting point.
	if entropy.Y[0] > -6.5 || entropy.Y[0] < -7.6 {
		t.Fatalf("initial entropy loss = %g, want ≈ -7.1", entropy.Y[0])
	}
	// Rewards are fidelities: all within (0,1).
	for _, r := range reward.Y {
		if r <= 0 || r >= 1 {
			t.Fatalf("reward %g outside (0,1)", r)
		}
	}
	// Timesteps monotone increasing.
	for i := 1; i < len(reward.X); i++ {
		if reward.X[i] <= reward.X[i-1] {
			t.Fatal("timesteps not increasing")
		}
	}
}

func TestFig6HistogramsCoverAllModes(t *testing.T) {
	cs := smallCase()
	runs, err := cs.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	hists := Fig6Histograms(runs, 30)
	if len(hists) != 4 {
		t.Fatalf("histograms = %d", len(hists))
	}
	var lo, hi float64
	first := true
	for mode, h := range hists {
		if h.Total != 60 {
			t.Fatalf("%s: binned %d of 60", mode, h.Total)
		}
		if first {
			lo, hi = h.Lo, h.Hi
			first = false
		} else if h.Lo != lo || h.Hi != hi {
			t.Fatal("histograms must share a common range for comparison")
		}
	}
	// The fidelity-mode distribution should sit to the right: its mode
	// exceeds the rl-mode's.
	if hists["fidelity"].Mode() <= hists["rlbase"].Mode() {
		t.Errorf("fidelity mode should be right-shifted: mode %.4f vs rl %.4f",
			hists["fidelity"].Mode(), hists["rlbase"].Mode())
	}
}

func TestFig6EmptyRunsSafeRange(t *testing.T) {
	hists := Fig6Histograms(map[string]*ModeRun{"speed": {Fidelities: nil}}, 10)
	if hists["speed"].Total != 0 {
		t.Fatal("empty run should produce empty histogram")
	}
}

func TestPhiSweepMonotoneForMultiDeviceJobs(t *testing.T) {
	cs := smallCase()
	cs.Workload.N = 25
	points, err := cs.PhiSweep("speed", []float64{0.85, 0.95, 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// Every job is multi-device (q > 127), so higher φ ⇒ strictly higher
	// mean fidelity.
	for i := 1; i < len(points); i++ {
		if points[i].Results.FidelityMean <= points[i-1].Results.FidelityMean {
			t.Fatalf("fidelity not monotone in φ: %+v", points)
		}
	}
	// Config must be restored after the sweep.
	if cs.Core.Phi != 0.95 {
		t.Fatalf("Phi not restored: %g", cs.Core.Phi)
	}
}

func TestLambdaSweepScalesCommTime(t *testing.T) {
	cs := smallCase()
	cs.Workload.N = 25
	points, err := cs.LambdaSweep("fair", []float64{0.0, 0.02, 0.04})
	if err != nil {
		t.Fatal(err)
	}
	if points[0].Results.TotalCommTime != 0 {
		t.Fatalf("λ=0 should zero comm time, got %g", points[0].Results.TotalCommTime)
	}
	if points[2].Results.TotalCommTime <= points[1].Results.TotalCommTime {
		t.Fatal("comm time should grow with λ")
	}
}

func TestSweepValidation(t *testing.T) {
	cs := smallCase()
	if _, err := cs.PhiSweep("speed", nil); err == nil {
		t.Fatal("empty sweep accepted")
	}
	if _, err := cs.PhiSweep("bogus", []float64{0.9}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestRLDeploymentAblation(t *testing.T) {
	cs := smallCase()
	cs.Workload.N = 30
	sampled, det, err := cs.RLDeploymentAblation()
	if err != nil {
		t.Fatal(err)
	}
	if sampled.Results.JobsFinished != 30 || det.Results.JobsFinished != 30 {
		t.Fatal("ablation runs incomplete")
	}
	// Flag restored.
	if cs.RLDeterministic {
		t.Fatal("RLDeterministic not restored")
	}
}

func TestRunReplicatedAggregates(t *testing.T) {
	cs := smallCase()
	cs.Workload.N = 30
	rep, err := cs.RunReplicated("speed", []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Mode != "speed" || len(rep.Seeds) != 3 {
		t.Fatalf("rep = %+v", rep)
	}
	if rep.MuFStat.Min > rep.MuFStat.Mean || rep.MuFStat.Mean > rep.MuFStat.Max {
		t.Fatalf("muF stats inconsistent: %+v", rep.MuFStat)
	}
	if rep.MuFStat.Std < 0 {
		t.Fatal("negative std")
	}
	if rep.TsimStat.Mean <= 0 || rep.TcommStat.Mean <= 0 {
		t.Fatalf("degenerate stats: %+v", rep)
	}
	// Different seeds must actually produce different workloads.
	if rep.TsimStat.Min == rep.TsimStat.Max {
		t.Fatal("replication shows no variation across seeds")
	}
	// Original seed restored.
	if cs.Workload.Seed != 3 && cs.Workload.Seed != smallCase().Workload.Seed {
		t.Fatalf("workload seed not restored: %d", cs.Workload.Seed)
	}
}

func TestRunReplicatedValidation(t *testing.T) {
	cs := smallCase()
	if _, err := cs.RunReplicated("speed", nil); err == nil {
		t.Fatal("empty seeds accepted")
	}
	if _, err := cs.RunReplicated("bogus", []int64{1}); err == nil {
		t.Fatal("unknown mode accepted")
	}
}

func TestDefaultUsesPaperWorkload(t *testing.T) {
	cs := Default()
	if cs.Workload.N != 1000 || cs.Workload.MinQubits != 130 || cs.Workload.MaxQubits != 250 {
		t.Fatalf("default workload deviates from the paper: %+v", cs.Workload)
	}
	if cs.PPO.ClipRange != 0.2 {
		t.Fatal("default PPO should use SB3 defaults")
	}
	jobs, err := cs.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1000 {
		t.Fatalf("jobs = %d", len(jobs))
	}
}
