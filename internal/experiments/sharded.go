package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"

	"repro/internal/core"
	"repro/internal/experiments/runner"
	"repro/internal/experiments/shard"
	"repro/internal/job"
	"repro/internal/policy"
	"repro/internal/records"
	"repro/internal/rl"
)

// ShardSpec is the JSON-portable description of one orchestrated run:
// the full case-study configuration plus the task matrix. It is the
// opaque spec a shard coordinator ships to every worker process, and it
// pins everything a worker needs to reproduce its tasks bit-identically
// — all random streams derive from the seeds captured here, including
// the rlbase policy, which each worker (re)trains deterministically
// from PPO.Seed when its subset needs it.
type ShardSpec struct {
	Workload    job.SyntheticConfig `json:"workload"`
	Core        core.Config         `json:"core"`
	FleetPreset string              `json:"fleet_preset,omitempty"`
	// TracePath replays a workload trace instead of the synthetic
	// generator; worker processes resolve it against their working
	// directory, which the coordinator shares with them.
	TracePath       string       `json:"trace_path,omitempty"`
	FleetSeed       int64        `json:"fleet_seed"`
	TrainSteps      int          `json:"train_steps"`
	PPO             rl.PPOConfig `json:"ppo"`
	RLSeed          int64        `json:"rl_seed"`
	RLDeterministic bool         `json:"rl_deterministic"`
	// Matrix enumerates the run's tasks; workers expand it exactly like
	// the in-process entry points do.
	Matrix TaskMatrix `json:"matrix"`
	// Workers sizes each worker process's in-process pool (<= 1 means
	// sequential within the worker; parallelism normally comes from the
	// process fan-out itself).
	Workers int `json:"workers,omitempty"`
}

// shardSpec captures the case study's portable configuration.
func (cs *CaseStudy) shardSpec(m TaskMatrix, workers int) ShardSpec {
	return ShardSpec{
		Workload:        cs.Workload,
		Core:            cs.Core,
		FleetPreset:     cs.FleetPreset,
		TracePath:       cs.TracePath,
		FleetSeed:       cs.FleetSeed,
		TrainSteps:      cs.TrainSteps,
		PPO:             cs.PPO,
		RLSeed:          cs.RLSeed,
		RLDeterministic: cs.RLDeterministic,
		Matrix:          m,
		Workers:         workers,
	}
}

// caseStudy reconstructs the worker-side case study.
func (s ShardSpec) caseStudy() *CaseStudy {
	return &CaseStudy{
		Workload:        s.Workload,
		Core:            s.Core,
		FleetPreset:     s.FleetPreset,
		TracePath:       s.TracePath,
		FleetSeed:       s.FleetSeed,
		TrainSteps:      s.TrainSteps,
		PPO:             s.PPO,
		RLSeed:          s.RLSeed,
		RLDeterministic: s.RLDeterministic,
	}
}

// Fault-injection hooks for the shard worker, used by the fault
// tolerance tests (and usable against a real run to rehearse failure
// semantics). Both make the worker process kill itself after streaming
// its first result — mid-shard, so the coordinator sees a crashed
// worker with the shard only partially delivered:
//
//	EXPERIMENTS_SHARD_CRASH_ONCE=<path>  only the first worker process
//	                                     to create <path> crashes;
//	                                     respawned workers find the
//	                                     file and run clean.
//	EXPERIMENTS_SHARD_CRASH_ALWAYS=1     every worker crashes, so
//	                                     retries are exhausted.
const (
	crashOnceEnv   = "EXPERIMENTS_SHARD_CRASH_ONCE"
	crashAlwaysEnv = "EXPERIMENTS_SHARD_CRASH_ALWAYS"
)

// crashArmed reports whether this worker process should self-kill
// after its first emitted result.
func crashArmed() bool {
	if os.Getenv(crashAlwaysEnv) == "1" {
		return true
	}
	if path := os.Getenv(crashOnceEnv); path != "" {
		f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			return false // a previous worker already took the crash
		}
		f.Close() //lint:allow errlint nothing was written to the crash sentinel; close cannot lose data
		return true
	}
	return false
}

// ServeShardWorker runs the worker half of the shard protocol on r/w —
// stdin/stdout when the experiments binary is re-invoked with
// -shard-worker. It decodes the ShardSpec, re-enumerates the task
// matrix, verifies the coordinator's labels against its own enumeration
// (a mismatch means the two processes disagree about the experiment and
// nothing may run), trains the rlbase policy once iff its assigned
// subset contains an rlbase task, and streams one manifest row per
// finished task.
func ServeShardWorker(ctx context.Context, r io.Reader, w io.Writer) error {
	return shard.ServeWorker(ctx, r, w, shardRunFunc)
}

// shardRunFunc is the worker-side task engine shared by every
// transport: the subprocess worker (ServeShardWorker) and the TCP
// daemon (ServeShardDaemon) both hand orders to this one function, so
// a task produces the same manifest row no matter which wire carried
// its order.
func shardRunFunc(ctx context.Context, raw []byte, indices []int, labels []string, emit func(int, records.RunSummary) error) error {
	var spec ShardSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return fmt.Errorf("experiments: decoding shard spec: %w", err)
	}
	cs := spec.caseStudy()
	specs, err := spec.Matrix.specs(false)
	if err != nil {
		return err
	}
	tasks := make([]runner.Task[RunArtifact], len(specs))
	needsRL := false
	for j, i := range indices {
		if i < 0 || i >= len(specs) {
			return fmt.Errorf("experiments: shard order index %d outside task matrix of %d", i, len(specs))
		}
		if specs[i].id != labels[j] {
			return fmt.Errorf("experiments: shard order label %q != enumerated task %q at index %d", labels[j], specs[i].id, i)
		}
		if policy.NeedsModel(specs[i].mode) {
			needsRL = true
		}
	}
	if needsRL {
		if err := cs.ensureTrained("rlbase"); err != nil {
			return fmt.Errorf("experiments: training rlbase: %w", err)
		}
	}
	for i, s := range specs {
		tasks[i] = cs.task(s)
	}
	sub, err := runner.Subset(tasks, indices)
	if err != nil {
		return err
	}
	// Stream each finished task through emit immediately: results
	// delivered before a crash survive it, so a respawned worker
	// only re-runs the genuinely unfinished remainder.
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	die := crashArmed()
	var mu sync.Mutex
	var emitErr error
	pool := runner.Pool[RunArtifact]{
		Workers: max(1, spec.Workers),
		OnResult: func(j int, art RunArtifact) {
			if err := emit(indices[j], art.Summary()); err != nil {
				mu.Lock()
				if emitErr == nil {
					emitErr = err
				}
				mu.Unlock()
				cancel()
				return
			}
			if die {
				os.Exit(3) // injected fault: die mid-shard, after one result
			}
		},
	}
	_, runErr := pool.Run(wctx, sub)
	mu.Lock()
	defer mu.Unlock()
	if emitErr != nil {
		return emitErr
	}
	return runErr
}

// ShardOptions configures the multi-process executor behind the
// Sharded executor and the legacy *Sharded entry points. The knobs
// shared with in-process execution (Workers, Retries, OnProgress) live
// in the embedded ExecOptions; here Workers sizes each worker
// process's internal pool (<= 1 runs a worker's tasks sequentially —
// the usual choice, since parallelism comes from the process fan-out)
// and OnProgress receives one callback per finished task, translated
// from coordinator result events.
type ShardOptions struct {
	ExecOptions
	// Shards is the worker process count; <= 0 means 1.
	Shards int
	// Command returns a fresh worker process command. Nil re-invokes
	// the current executable with -shard-worker, which is correct for
	// the experiments binary and any binary that wires that flag to
	// ServeShardWorker.
	Command func(ctx context.Context) *exec.Cmd
	// OnEvent, if set, receives raw coordinator lifecycle events
	// (spawn/result/retry/done) beyond the per-task OnProgress stream.
	OnEvent func(shard.Progress)
	// Stderr receives worker stderr; nil means os.Stderr.
	Stderr io.Writer
}

func (o ShardOptions) command() func(ctx context.Context) *exec.Cmd {
	if o.Command != nil {
		return o.Command
	}
	return func(ctx context.Context) *exec.Cmd {
		exe, err := os.Executable()
		if err != nil {
			exe = os.Args[0]
		}
		return exec.CommandContext(ctx, exe, "-shard-worker")
	}
}

// RunMatrixSharded executes an arbitrary task matrix across worker OS
// processes and returns the merged manifest in global task order. The
// merge fails loudly if crash retries ever produced a duplicate or
// dropped a task, so a returned manifest is complete by construction.
// Results are bit-identical to the in-process paths (wall times aside):
// workers rebuild the exact per-task snapshots from the ShardSpec's
// seeds, sharing the enumeration in TaskMatrix.specs with
// RunAllParallel and friends.
func (cs *CaseStudy) RunMatrixSharded(ctx context.Context, opt ShardOptions, m TaskMatrix) (*records.RunManifest, error) {
	spec, labels, err := cs.shardPayload(m, opt.Workers)
	if err != nil {
		return nil, err
	}
	coord := shard.Coordinator{
		Shards:          opt.Shards,
		Retries:         opt.Retries,
		Command:         opt.command(),
		PerShardWorkers: opt.Workers,
		OnProgress:      coordinatorProgress(opt.ExecOptions, opt.OnEvent),
		Stderr:          opt.Stderr,
	}
	return coord.Run(ctx, m.Label(), spec, labels)
}

// shardPayload validates a matrix for out-of-process execution and
// serializes its portable spec — the checks and encoding shared by the
// Sharded (subprocess) and Remote (TCP) executors.
func (cs *CaseStudy) shardPayload(m TaskMatrix, workers int) (json.RawMessage, []string, error) {
	labels, err := m.TaskLabels()
	if err != nil {
		return nil, nil, err
	}
	// An injected policy (UseTrainedPolicy) never reaches worker
	// processes — they retrain from PPO.Seed — so running rlbase tasks
	// with one would silently break the bit-identical guarantee.
	if cs.injected {
		for _, mode := range m.modes() {
			if policy.NeedsModel(mode) {
				return nil, nil, fmt.Errorf("experiments: sharded execution cannot use a policy injected via UseTrainedPolicy; workers retrain from the serialized config (train in-process instead, or drop rlbase from the matrix)")
			}
		}
	}
	// Duplicate task IDs (e.g. a repeated replication seed) would only
	// surface in the final merge, after every simulation already ran;
	// reject them before any worker is spawned.
	seen := make(map[string]bool, len(labels))
	for _, l := range labels {
		if seen[l] {
			return nil, nil, fmt.Errorf("experiments: task matrix enumerates %q twice; sharded runs need unique task IDs", l)
		}
		seen[l] = true
	}
	spec, err := json.Marshal(cs.shardSpec(m, workers))
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: encoding shard spec: %w", err)
	}
	return spec, labels, nil
}

// coordinatorProgress adapts coordinator lifecycle events to the two
// callback streams executors expose: the raw OnEvent feed, and the
// shared per-task OnProgress stream fed from result events. Wall time
// stays zero in the latter: it is spent in the worker, not here.
func coordinatorProgress(opt ExecOptions, onEvent func(shard.Progress)) func(shard.Progress) {
	if onEvent == nil && opt.OnProgress == nil {
		return nil
	}
	return func(p shard.Progress) {
		if onEvent != nil {
			onEvent(p)
		}
		if opt.OnProgress != nil && p.Event == "result" {
			opt.OnProgress(runner.Progress{Index: p.Index, Label: p.Label, Done: p.Done, Total: p.Total})
		}
	}
}

// RunAllSharded is RunAllParallel across worker processes: the four
// strategies of Table 2 partitioned over OS-process shards, returned as
// one merged manifest.
//
// Deprecated: prefer Run with a {Kind: "modes"} matrix on the Sharded
// executor.
func (cs *CaseStudy) RunAllSharded(ctx context.Context, opt ShardOptions) (*records.RunManifest, error) {
	return cs.RunMatrixSharded(ctx, opt, TaskMatrix{Kind: "modes"})
}

// RunReplicatedSharded is RunReplicatedParallel across worker
// processes: one task per workload seed for the named mode. Aggregate
// statistics over the manifest rows with stats.AggregateSamples.
//
// Deprecated: prefer Run with a {Kind: "replicate"} matrix on the
// Sharded executor.
func (cs *CaseStudy) RunReplicatedSharded(ctx context.Context, opt ShardOptions, mode string, seeds []int64) (*records.RunManifest, error) {
	return cs.RunMatrixSharded(ctx, opt, TaskMatrix{Kind: "replicate", Mode: mode, Seeds: seeds})
}
