package shard

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"repro/internal/records"
)

// DefaultHeartbeatInterval is how often a Server emits heartbeat frames
// while an order runs. Coordinators budget DefaultHeartbeatTimeout of
// silence, so several heartbeats may be lost before a daemon is
// declared wedged.
const DefaultHeartbeatInterval = 2 * time.Second

// Server is the long-lived worker daemon behind `experiments -serve`:
// it accepts coordinator connections over TCP, answers health pings,
// and executes shard orders with the same RunFunc contract as
// ServeWorker — streaming result frames as tasks finish, interleaved
// with heartbeats so a coordinator can tell a long simulation from a
// wedged host.
//
// The daemon outlives its coordinators: a dropped connection cancels
// only that connection's in-flight order (there is no point simulating
// for a listener that is gone) and the accept loop keeps serving. Only
// canceling the Serve context shuts the daemon down.
type Server struct {
	// Run executes one order's tasks. Required.
	Run RunFunc
	// Capacity is the advertised per-order worker-pool size reported in
	// Health; it is provenance for -doctor, not a limit the server
	// enforces (RunFunc owns its own concurrency).
	Capacity int
	// HeartbeatInterval overrides DefaultHeartbeatInterval when > 0.
	HeartbeatInterval time.Duration
	// Logf, when set, receives one line per connection-level event
	// (connect, order, disconnect, refusal). Nil means silent.
	Logf func(format string, args ...any)

	mu     sync.Mutex
	start  time.Time
	active int
	served int64
}

// Serve accepts and handles coordinator connections on ln until ctx is
// canceled, then closes the listener, disconnects every client and
// returns nil. Errors from individual connections never stop the
// daemon; only a listener failure surfaces.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	if s.Run == nil {
		return errors.New("shard: Server.Run is required")
	}
	s.mu.Lock()
	if s.start.IsZero() {
		//lint:allow detlint daemon uptime is operational wall-clock metadata, not simulation state
		s.start = time.Now()
	}
	s.mu.Unlock()
	//lint:allow errlint closing the listener is how cancellation unblocks Accept; the error has no consumer
	stop := context.AfterFunc(ctx, func() { ln.Close() })
	defer stop()

	var wg sync.WaitGroup
	for {
		conn, err := ln.Accept()
		if err != nil {
			wg.Wait()
			if ctx.Err() != nil {
				return nil // clean shutdown
			}
			return fmt.Errorf("shard: accepting connection: %w", err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.handle(ctx, conn)
		}()
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.Logf != nil {
		s.Logf(format, args...)
	}
}

// health snapshots the daemon's self-description under the counter
// lock.
func (s *Server) health() *Health {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Health{
		Version:  ProtocolVersion,
		Capacity: max(1, s.Capacity),
		Active:   s.active,
		Served:   s.served,
		UptimeS:  time.Since(s.start).Seconds(), //lint:allow detlint uptime reporting is operational wall-clock metadata, not simulation state
	}
}

// handle speaks the daemon side of the protocol on one connection:
// hello handshake with version check, then a request loop of pings and
// orders until the coordinator hangs up.
func (s *Server) handle(ctx context.Context, conn net.Conn) {
	defer conn.Close() //lint:allow errlint protocol errors travel in-band; close errors on a request socket carry no data
	// Unblock reads when the daemon shuts down mid-connection.
	//lint:allow errlint the shutdown close only unblocks reads; the handler's own defer reports nothing either way
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()
	peer := conn.RemoteAddr().String()

	// The handshake runs under a deadline: a connection that never says
	// hello (port scanner, half-open socket) must not pin a goroutine.
	//lint:allow detlint network I/O deadlines are wall-clock by nature; they bound a hung peer, not simulated time
	if err := conn.SetReadDeadline(time.Now().Add(DefaultDialTimeout)); err != nil {
		return
	}
	var hello request
	if err := readFrame(conn, &hello); err != nil {
		s.logf("%s: handshake failed: %v", peer, err)
		return
	}
	if hello.Type != reqHello {
		s.logf("%s: refused: first frame %q, want hello", peer, hello.Type)
		//lint:allow errlint best-effort refusal frame to a peer being dropped; the refusal itself is already logged
		_ = writeFrame(conn, reply{Type: msgError, Error: fmt.Sprintf("expected hello, got %q", hello.Type)})
		return
	}
	if hello.Version != ProtocolVersion {
		s.logf("%s: refused: protocol v%d, daemon speaks v%d", peer, hello.Version, ProtocolVersion)
		//lint:allow errlint best-effort refusal frame to a peer being dropped; the refusal itself is already logged
		_ = writeFrame(conn, reply{Type: msgError, Error: fmt.Sprintf("protocol version mismatch: coordinator speaks v%d, daemon v%d", hello.Version, ProtocolVersion)})
		return
	}
	if err := conn.SetReadDeadline(time.Time{}); err != nil {
		return
	}
	if err := writeFrame(conn, reply{Type: msgHello, Health: s.health()}); err != nil {
		s.logf("%s: handshake failed: %v", peer, err)
		return
	}
	s.logf("%s: connected (protocol v%d)", peer, hello.Version)

	for {
		var req request
		if err := readFrame(conn, &req); err != nil {
			if err != io.EOF && ctx.Err() == nil {
				s.logf("%s: disconnected: %v", peer, err)
			} else {
				s.logf("%s: disconnected", peer)
			}
			return
		}
		switch req.Type {
		case reqPing:
			if err := writeFrame(conn, reply{Type: msgPong, Health: s.health()}); err != nil {
				s.logf("%s: disconnected: %v", peer, err)
				return
			}
		case reqOrder:
			if err := s.runOrder(ctx, conn, peer, order{Spec: req.Spec, Indices: req.Indices, Labels: req.Labels}); err != nil {
				s.logf("%s: order failed: %v", peer, err)
				return
			}
			s.logf("%s: order done (%d tasks)", peer, len(req.Indices))
		default:
			s.logf("%s: refused frame type %q", peer, req.Type)
			//lint:allow errlint best-effort refusal frame to a peer being dropped; the refusal itself is already logged
			_ = writeFrame(conn, reply{Type: msgError, Error: fmt.Sprintf("unknown request type %q", req.Type)})
			return
		}
	}
}

// runOrder executes one order, streaming results and heartbeats. A
// write failure means the coordinator is gone; the in-flight tasks are
// canceled (their results have nowhere to go — the coordinator will
// requeue them elsewhere) and the connection is abandoned, but the
// daemon itself keeps serving.
func (s *Server) runOrder(ctx context.Context, conn net.Conn, peer string, o order) error {
	if len(o.Labels) != len(o.Indices) {
		err := fmt.Errorf("order has %d labels for %d indices", len(o.Labels), len(o.Indices))
		//lint:allow errlint best-effort rejection frame; the malformed order is reported through the returned error
		_ = writeFrame(conn, reply{Type: msgError, Error: err.Error()})
		return err
	}
	hb := s.HeartbeatInterval
	if hb <= 0 {
		hb = DefaultHeartbeatInterval
	}
	s.mu.Lock()
	s.active++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		s.active--
		s.mu.Unlock()
	}()

	// octx cancels the order's simulations the moment a write fails.
	octx, cancel := context.WithCancel(ctx)
	defer cancel()

	// All frames — results from RunFunc's goroutines, heartbeats from
	// the ticker — go through write: one mutex so frames never
	// interleave, and a deadline per frame so a coordinator that stops
	// reading cannot wedge the daemon.
	var wmu sync.Mutex
	write := func(rep reply) error {
		wmu.Lock()
		defer wmu.Unlock()
		//lint:allow detlint network I/O deadlines are wall-clock by nature; they bound a hung peer, not simulated time
		if err := conn.SetWriteDeadline(time.Now().Add(DefaultHeartbeatTimeout)); err != nil {
			return err
		}
		if err := writeFrame(conn, rep); err != nil {
			cancel()
			return err
		}
		return conn.SetWriteDeadline(time.Time{})
	}

	hbDone := make(chan struct{})
	defer close(hbDone)
	go func() {
		t := time.NewTicker(hb)
		defer t.Stop()
		for {
			//lint:allow detlint heartbeats are wall-clock liveness plumbing; whichever arm fires, no simulation state is touched
			select {
			case <-hbDone:
				return
			case <-octx.Done():
				return
			case <-t.C:
				if write(reply{Type: msgHeartbeat}) != nil {
					return
				}
			}
		}
	}()

	emit := func(index int, sum records.RunSummary) error {
		if err := write(reply{Type: msgResult, Index: index, Summary: &sum}); err != nil {
			return err
		}
		s.mu.Lock()
		s.served++
		s.mu.Unlock()
		return nil
	}
	if err := s.Run(octx, o.Spec, o.Indices, o.Labels, emit); err != nil {
		// Best-effort: like ServeWorker, the coordinator learns the root
		// cause from this frame if the connection still works.
		//lint:allow errlint best-effort root-cause frame; a dead connection already surfaces as a coordinator-side failure
		_ = write(reply{Type: msgError, Error: err.Error()})
		return err
	}
	return write(reply{Type: msgDone})
}
