// Package shard executes an experiment task matrix across worker
// processes — local subprocesses or worker daemons on remote hosts. A
// Coordinator partitions the globally enumerated task list into
// deterministic contiguous shards, obtains one worker session per
// shard from a pluggable Transport, and speaks a length-prefixed JSON
// protocol with each worker:
//
//	coordinator → worker  one order{spec, indices, labels} frame
//	worker → coordinator  a stream of result frames (one per finished
//	                      task, in completion order), terminated by a
//	                      done frame — or an error frame if a task
//	                      fails deliberately
//
// Two transports ship. ProcessTransport (the default when Command is
// set) spawns one worker subprocess per shard — typically the
// experiments binary re-invoked in its hidden -shard-worker mode — and
// frames over stdin/stdout. TCPTransport dials long-lived worker
// daemons (Server, usually `experiments -serve`) across a host list,
// prefixing the order with a hello/version handshake and interleaving
// server heartbeats into the result stream so a wedged daemon is
// detected within HeartbeatTimeout; Probe exposes the same handshake
// as a health check for `-doctor`. The wire protocol is specified in
// docs/operations.md.
//
// Workers stream results as they finish, so when a worker dies
// mid-shard the coordinator keeps the delivered rows and retries just
// the unfinished indices (bounded by Retries) — on a fresh subprocess,
// or failing over to the next host in the fleet. Rows produced over
// TCP record their origin (records.RunSummary.Host/Attempt);
// subprocess rows stay provenance-free. Deliberately reported task
// errors are not retried: the simulations are deterministic, so a
// failing task would fail again.
//
// The package is deliberately ignorant of simulations — the spec is an
// opaque JSON document the worker-side RunFunc interprets — mirroring
// how the in-process runner.Pool is ignorant of task internals. The
// per-shard manifests merge through records.MergeManifests, which
// restores global task order and rejects duplicate or missing rows.
package shard

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/records"
)

// maxFrame bounds one protocol frame (64 MiB). A length prefix beyond
// it means a corrupt or misframed stream, not a plausible message.
const maxFrame = 64 << 20

// order is the single coordinator→worker message: the opaque experiment
// spec plus the worker's assigned slice of the global task list.
// Indices are global positions in the coordinator's enumeration; Labels
// carries the matching task IDs so the worker can verify it enumerated
// the same task list before running anything.
type order struct {
	Spec    json.RawMessage `json:"spec"`
	Indices []int           `json:"indices"`
	Labels  []string        `json:"labels"`
}

// reply is one worker→coordinator message.
type reply struct {
	// Type is msgResult, msgError or msgDone — or, on TCP sessions only,
	// msgHello, msgPong or msgHeartbeat.
	Type string `json:"type"`
	// Index is the global task index (msgResult only).
	Index int `json:"index"`
	// Summary is the finished task's manifest row (msgResult only).
	Summary *records.RunSummary `json:"summary,omitempty"`
	// Error is the worker's deliberate failure report (msgError only).
	Error string `json:"error,omitempty"`
	// Health is the daemon's self-description (msgHello and msgPong,
	// TCP sessions only).
	Health *Health `json:"health,omitempty"`
}

const (
	msgResult = "result"
	msgError  = "error"
	msgDone   = "done"
)

// writeFrame sends one message: a 4-byte big-endian payload length
// followed by the JSON payload.
func writeFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("shard: encoding frame: %w", err)
	}
	if len(payload) > maxFrame {
		return fmt.Errorf("shard: frame of %d bytes exceeds limit %d", len(payload), maxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// readFrame reads one message. A clean end of stream at a frame
// boundary returns io.EOF; a stream cut mid-frame returns
// io.ErrUnexpectedEOF — the coordinator treats both as a worker crash
// unless a done frame arrived first.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		// io.EOF at the boundary and io.ErrUnexpectedEOF inside the
		// header both propagate unchanged.
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		return fmt.Errorf("shard: frame length %d exceeds limit %d", n, maxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		return err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("shard: decoding frame: %w", err)
	}
	return nil
}

// Plan partitions n tasks into at most k contiguous shards whose sizes
// differ by no more than one, earlier shards taking the extra tasks.
// The partition is a pure function of (n, k), so a coordinator and any
// observer agree on shard boundaries without communication.
func Plan(n, k int) [][]int {
	if n <= 0 {
		return nil
	}
	if k <= 0 {
		k = 1
	}
	if k > n {
		k = n
	}
	shards := make([][]int, 0, k)
	next := 0
	for i := 0; i < k; i++ {
		size := n / k
		if i < n%k {
			size++
		}
		idx := make([]int, size)
		for j := range idx {
			idx[j] = next
			next++
		}
		shards = append(shards, idx)
	}
	return shards
}
