package shard

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/retry"
)

func mustInj(t *testing.T, rules ...faults.Rule) *faults.Injector {
	t.Helper()
	inj, err := faults.NewInjector(&faults.Plan{Seed: 7, Rules: rules})
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// An injected frame reset mid-shard must behave exactly like a worker
// crash: the coordinator respawns, requeues the remainder, and the
// merged manifest is identical to an undisturbed run.
func TestFaultTransportResetRequeuesRemainder(t *testing.T) {
	spec := specJSON(t, testSpec{FailAt: -1, CrashAt: -1, Scale: 2})
	labels := taskLabels(6)

	clean, err := (&Coordinator{Shards: 1, Command: workerCmd(t)}).Run(context.Background(), "x", spec, labels)
	if err != nil {
		t.Fatal(err)
	}

	inj := mustInj(t, faults.Rule{
		Layer: faults.LayerTransport, Op: faults.OpFrame, Kind: faults.KindReset, After: 2, Max: 1,
	})
	retries := 0
	c := Coordinator{
		Shards:    1,
		Transport: &FaultTransport{Inner: &ProcessTransport{Command: workerCmd(t)}, Inj: inj},
		OnProgress: func(p Progress) {
			if p.Event == "retry" {
				retries++
			}
		},
	}
	faulted, err := c.Run(context.Background(), "x", spec, labels)
	if err != nil {
		t.Fatalf("run under injected reset: %v", err)
	}
	if retries == 0 {
		t.Fatal("reset fault never triggered the requeue path")
	}
	if len(faulted.Runs) != len(clean.Runs) {
		t.Fatalf("faulted run has %d rows, clean has %d", len(faulted.Runs), len(clean.Runs))
	}
	for i := range clean.Runs {
		if clean.Runs[i].ID != faulted.Runs[i].ID || clean.Runs[i].TsimS != faulted.Runs[i].TsimS {
			t.Fatalf("row %d diverged under fault injection: %+v vs %+v", i, clean.Runs[i], faulted.Runs[i])
		}
	}
	if evs := inj.Events(); len(evs) != 1 || evs[0].Kind != faults.KindReset {
		t.Fatalf("fault log = %+v, want exactly one reset", evs)
	}
}

// A transient partition at dial time heals under RetryTransport: the
// shared retry policy re-dials and the run completes. Without it, the
// same partition is terminal.
func TestRetryTransportHealsTransientPartition(t *testing.T) {
	spec := specJSON(t, testSpec{FailAt: -1, CrashAt: -1, Scale: 1})
	labels := taskLabels(4)

	// Terminal without retry: connect errors are final by contract.
	inj := mustInj(t, faults.Rule{
		Layer: faults.LayerTransport, Op: faults.OpConnect, Kind: faults.KindPartition, Max: 1,
	})
	c := Coordinator{
		Shards:    1,
		Transport: &FaultTransport{Inner: &ProcessTransport{Command: workerCmd(t)}, Inj: inj},
	}
	if _, err := c.Run(context.Background(), "x", spec, labels); err == nil || !strings.Contains(err.Error(), "partitioned") {
		t.Fatalf("unretried partition = %v, want terminal partition error", err)
	}

	// Healed with retry: the second dial attempt goes through.
	inj = mustInj(t, faults.Rule{
		Layer: faults.LayerTransport, Op: faults.OpConnect, Kind: faults.KindPartition, Max: 1,
	})
	var delays []time.Duration
	c = Coordinator{
		Shards: 1,
		Transport: &RetryTransport{
			Inner: &FaultTransport{Inner: &ProcessTransport{Command: workerCmd(t)}, Inj: inj},
			Policy: retry.Policy{
				MaxAttempts: 3,
				BaseDelay:   time.Millisecond,
				Sleep: func(ctx context.Context, d time.Duration) error {
					delays = append(delays, d)
					return nil
				},
			},
		},
	}
	m, err := c.Run(context.Background(), "x", spec, labels)
	if err != nil {
		t.Fatalf("partition did not heal under RetryTransport: %v", err)
	}
	if len(m.Runs) != 4 {
		t.Fatalf("healed run produced %d rows, want 4", len(m.Runs))
	}
	if len(delays) != 1 {
		t.Fatalf("retry slept %d times, want 1", len(delays))
	}
}

// A duplicated frame must trip the coordinator's integrity check, not
// silently double-count a task.
func TestFaultTransportDupTripsIntegrityCheck(t *testing.T) {
	inj := mustInj(t, faults.Rule{
		Layer: faults.LayerTransport, Op: faults.OpFrame, Kind: faults.KindDup, After: 1, Max: 1,
	})
	c := Coordinator{
		Shards:    1,
		Retries:   0,
		Transport: &FaultTransport{Inner: &ProcessTransport{Command: workerCmd(t)}, Inj: inj},
	}
	spec := specJSON(t, testSpec{FailAt: -1, CrashAt: -1, Scale: 1})
	_, err := c.Run(context.Background(), "x", spec, taskLabels(4))
	if err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicated frame = %v, want duplicate-index integrity error", err)
	}
}
