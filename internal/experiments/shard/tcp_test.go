package shard

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/records"
)

// startTestServer runs srv on an ephemeral localhost listener for the
// duration of the test and returns its address plus a kill switch
// (idempotent; also invoked at cleanup) that stops the daemon and
// waits for Serve to return.
func startTestServer(t *testing.T, srv *Server) (addr string, kill func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, ln) }()
	var once sync.Once
	kill = func() {
		once.Do(func() {
			cancel()
			if err := <-done; err != nil {
				t.Errorf("Serve returned %v on shutdown, want nil", err)
			}
		})
	}
	t.Cleanup(kill)
	return ln.Addr().String(), kill
}

// deadAddr returns a localhost address that was just proven free —
// connecting to it refuses.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestTCPMatchesProcessTransport is the transport-equivalence gate at
// the shard layer: the same spec over two TCP daemons produces exactly
// the rows a subprocess run produces, plus provenance — and nothing
// else may differ.
func TestTCPMatchesProcessTransport(t *testing.T) {
	addr1, _ := startTestServer(t, &Server{Run: scriptedRun})
	addr2, _ := startTestServer(t, &Server{Run: scriptedRun})
	spec := specJSON(t, testSpec{FailAt: -1, CrashAt: -1, Scale: 2})
	labels := taskLabels(9)

	remote, err := (&Coordinator{
		Shards:    2,
		Transport: &TCPTransport{Hosts: []string{addr1, addr2}},
	}).Run(context.Background(), "eq", spec, labels)
	if err != nil {
		t.Fatal(err)
	}
	local, err := (&Coordinator{Shards: 2, Command: workerCmd(t)}).Run(context.Background(), "eq", spec, labels)
	if err != nil {
		t.Fatal(err)
	}

	for i, r := range remote.Runs {
		if r.Host != addr1 && r.Host != addr2 {
			t.Fatalf("row %d host = %q, want one of the daemon addresses", i, r.Host)
		}
		if r.Attempt != 0 {
			t.Fatalf("row %d attempt = %d on a crash-free run, want 0", i, r.Attempt)
		}
		remote.Runs[i].Host, remote.Runs[i].Attempt = "", 0
	}
	for i := range local.Runs {
		if local.Runs[i].Host != "" || local.Runs[i].Attempt != 0 {
			t.Fatalf("subprocess row %d carries provenance %q/%d; local manifests must stay provenance-free",
				i, local.Runs[i].Host, local.Runs[i].Attempt)
		}
	}
	var a, b bytes.Buffer
	if err := remote.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := local.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("TCP and subprocess manifests diverge:\n%s\n%s", a.String(), b.String())
	}
}

// dyingDaemon speaks the protocol through exactly one result and then
// drops dead: the connection and listener close without a done or
// error frame, exactly the wire picture a killed daemon process
// leaves behind.
func dyingDaemon(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer ln.Close() // dead for good: later failovers must skip this host
		defer conn.Close()
		var req request
		if err := readFrame(conn, &req); err != nil || req.Type != reqHello {
			return
		}
		if err := writeFrame(conn, reply{Type: msgHello, Health: &Health{Version: ProtocolVersion, Capacity: 1}}); err != nil {
			return
		}
		if err := readFrame(conn, &req); err != nil || len(req.Indices) == 0 {
			return
		}
		sum := records.RunSummary{ID: req.Labels[0], Kind: "shard-test", Mode: "test"}
		_ = writeFrame(conn, reply{Type: msgResult, Index: req.Indices[0], Summary: &sum})
	}()
	return ln.Addr().String()
}

// TestTCPDaemonDeathRequeuesToSurvivor kills one of two daemons after
// it has delivered exactly one result; the coordinator must keep that
// row, requeue the remainder onto the surviving daemon, and record the
// failover in the provenance columns.
func TestTCPDaemonDeathRequeuesToSurvivor(t *testing.T) {
	dyingAddr := dyingDaemon(t)
	survivorAddr, _ := startTestServer(t, &Server{Run: scriptedRun})

	var mu sync.Mutex
	retries := 0
	c := Coordinator{
		Shards: 1, // one session: first lands on the dying daemon
		Transport: &TCPTransport{
			Hosts:            []string{dyingAddr, survivorAddr},
			HeartbeatTimeout: 500 * time.Millisecond,
		},
		OnProgress: func(p Progress) {
			mu.Lock()
			if p.Event == "retry" {
				retries++
			}
			mu.Unlock()
		},
	}
	spec := specJSON(t, testSpec{FailAt: -1, CrashAt: -1, Scale: 1})
	m, err := c.Run(context.Background(), "failover", spec, taskLabels(5))
	if err != nil {
		t.Fatal(err)
	}
	if retries == 0 {
		t.Fatal("daemon death produced no retry event")
	}
	if len(m.Runs) != 5 {
		t.Fatalf("%d rows after failover, want 5", len(m.Runs))
	}
	requeued := 0
	for i, r := range m.Runs {
		if r.ID != fmt.Sprintf("t/%d", i) {
			t.Fatalf("row %d = %s: global order lost across failover", i, r.ID)
		}
		if r.Attempt > 0 {
			requeued++
			if r.Host != survivorAddr {
				t.Fatalf("requeued row %s ran on %q, want the surviving daemon %q", r.ID, r.Host, survivorAddr)
			}
		}
	}
	if requeued == 0 {
		t.Fatal("no row records a requeued attempt; provenance lost the failover")
	}
}

// TestTCPAllHostsDownFailsCleanly: when no daemon is reachable the run
// must fail promptly with every host's refusal named — not retry
// (connect failures are terminal) and not hang.
func TestTCPAllHostsDownFailsCleanly(t *testing.T) {
	a, b := deadAddr(t), deadAddr(t)
	var mu sync.Mutex
	retries := 0
	c := Coordinator{
		Shards: 2,
		Transport: &TCPTransport{
			Hosts:       []string{a, b},
			DialTimeout: time.Second,
		},
		OnProgress: func(p Progress) {
			mu.Lock()
			if p.Event == "retry" {
				retries++
			}
			mu.Unlock()
		},
	}
	start := time.Now()
	_, err := c.Run(context.Background(), "down", specJSON(t, testSpec{FailAt: -1, CrashAt: -1}), taskLabels(4))
	if err == nil {
		t.Fatal("run against an empty fleet succeeded")
	}
	if !strings.Contains(err.Error(), "no worker daemon reachable") ||
		!strings.Contains(err.Error(), a) || !strings.Contains(err.Error(), b) {
		t.Fatalf("err = %v, want both unreachable hosts named", err)
	}
	if retries != 0 {
		t.Fatalf("%d retries for an unreachable fleet; connect failures are terminal", retries)
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("all-hosts-down took %v; must fail promptly, not hang", elapsed)
	}
}

// TestTCPHeartbeatsOutliveSlowTasks: a task that stays silent far
// longer than the heartbeat timeout must still complete, because the
// daemon's heartbeats carry the liveness signal.
func TestTCPHeartbeatsOutliveSlowTasks(t *testing.T) {
	srv := &Server{Run: scriptedRun, HeartbeatInterval: 30 * time.Millisecond}
	addr, _ := startTestServer(t, srv)
	c := Coordinator{
		Transport: &TCPTransport{
			Hosts:            []string{addr},
			HeartbeatTimeout: 150 * time.Millisecond,
		},
		Retries: -1, // a false crash verdict must fail the test, not hide behind a retry
	}
	// 500ms per task >> the 150ms silence budget.
	spec := specJSON(t, testSpec{FailAt: -1, CrashAt: -1, SleepMS: 500, Scale: 1})
	m, err := c.Run(context.Background(), "slow", spec, taskLabels(2))
	if err != nil {
		t.Fatalf("slow-but-heartbeating daemon was declared dead: %v", err)
	}
	if len(m.Runs) != 2 {
		t.Fatalf("%d rows, want 2", len(m.Runs))
	}
}

// wedgedDaemon speaks just enough protocol to take an order, then goes
// silent — no results, no heartbeats — like a SIGSTOP'd process whose
// kernel keeps the TCP session alive.
func wedgedDaemon(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				var req request
				if err := readFrame(conn, &req); err != nil || req.Type != reqHello {
					return
				}
				if err := writeFrame(conn, reply{Type: msgHello, Health: &Health{Version: ProtocolVersion, Capacity: 1}}); err != nil {
					return
				}
				if err := readFrame(conn, &req); err != nil {
					return
				}
				select {} // wedged: never answer, never heartbeat
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// TestTCPHeartbeatTimeoutDetectsWedgedDaemon: a daemon that accepts an
// order and then falls silent must be detected within the heartbeat
// timeout and reported as a mid-shard death, not waited on forever.
func TestTCPHeartbeatTimeoutDetectsWedgedDaemon(t *testing.T) {
	addr := wedgedDaemon(t)
	c := Coordinator{
		Retries: -1,
		Transport: &TCPTransport{
			Hosts:            []string{addr},
			HeartbeatTimeout: 200 * time.Millisecond,
		},
	}
	start := time.Now()
	_, err := c.Run(context.Background(), "wedged", specJSON(t, testSpec{FailAt: -1, CrashAt: -1}), taskLabels(3))
	if err == nil {
		t.Fatal("wedged daemon was never detected")
	}
	if !strings.Contains(err.Error(), "no frame or heartbeat within") || !strings.Contains(err.Error(), "died mid-shard") {
		t.Fatalf("err = %v, want heartbeat-timeout crash report", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("wedge detection took %v with a 200ms budget", elapsed)
	}
}

// TestTCPVersionMismatch drives both halves of version negotiation:
// the daemon refuses a client from the future, and the client refuses
// a daemon from the past.
func TestTCPVersionMismatch(t *testing.T) {
	// Daemon-side refusal: handcraft a hello with a wrong version.
	addr, _ := startTestServer(t, &Server{Run: scriptedRun})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := writeFrame(conn, request{Type: reqHello, Version: ProtocolVersion + 1}); err != nil {
		t.Fatal(err)
	}
	var rep reply
	if err := readFrame(conn, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Type != msgError || !strings.Contains(rep.Error, "version mismatch") {
		t.Fatalf("daemon answered %+v to a future client, want a version-mismatch refusal", rep)
	}

	// Client-side refusal: a fake daemon advertising a stale version.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		var req request
		if readFrame(c, &req) == nil {
			_ = writeFrame(c, reply{Type: msgHello, Health: &Health{Version: ProtocolVersion - 1}})
		}
		_, _ = c.Read(make([]byte, 1)) // hold the conn until the client hangs up
	}()
	_, _, err = dialWorker(context.Background(), ln.Addr().String(), time.Second, time.Second)
	if err == nil || !strings.Contains(err.Error(), "version mismatch") {
		t.Fatalf("dial to a stale daemon = %v, want version-mismatch error", err)
	}
}

// TestTCPServerSurvivesCoordinatorDisconnect: dropping a connection
// mid-order cancels that order but leaves the daemon serving — the
// property that makes daemons long-lived infrastructure rather than
// per-run processes.
func TestTCPServerSurvivesCoordinatorDisconnect(t *testing.T) {
	started := make(chan struct{})
	canceled := make(chan struct{})
	srv := &Server{
		HeartbeatInterval: 20 * time.Millisecond,
		Run: func(ctx context.Context, raw []byte, indices []int, labels []string, emit func(int, records.RunSummary) error) error {
			select {
			case <-started:
			default:
				close(started)
				<-ctx.Done() // first order: stall until the disconnect cancels us
				close(canceled)
				return ctx.Err()
			}
			return scriptedRun(ctx, raw, indices, labels, emit)
		},
	}
	addr, _ := startTestServer(t, srv)

	// First coordinator: handshake, send an order, hang up mid-run.
	sess, _, err := dialWorker(context.Background(), addr, time.Second, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.sendOrder(order{Spec: specJSON(t, testSpec{FailAt: -1, CrashAt: -1}), Indices: []int{0}, Labels: []string{"t/0"}}); err != nil {
		t.Fatal(err)
	}
	<-started
	if err := sess.close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-canceled:
	case <-time.After(10 * time.Second):
		t.Fatal("disconnect never canceled the in-flight order")
	}

	// Second coordinator: the daemon must serve a full run as if nothing
	// happened.
	m, err := (&Coordinator{
		Transport: &TCPTransport{Hosts: []string{addr}},
	}).Run(context.Background(), "after", specJSON(t, testSpec{FailAt: -1, CrashAt: -1, Scale: 1}), taskLabels(3))
	if err != nil {
		t.Fatalf("daemon did not survive a coordinator disconnect: %v", err)
	}
	if len(m.Runs) != 3 {
		t.Fatalf("%d rows from the surviving daemon, want 3", len(m.Runs))
	}
}

// TestTCPTaskErrorNotRetried mirrors the subprocess semantics over
// TCP: a deliberate task error fails the run without retries, and the
// daemon reports the root cause.
func TestTCPTaskErrorNotRetried(t *testing.T) {
	addr, _ := startTestServer(t, &Server{Run: scriptedRun})
	var mu sync.Mutex
	retries := 0
	c := Coordinator{
		Transport: &TCPTransport{Hosts: []string{addr}},
		OnProgress: func(p Progress) {
			mu.Lock()
			if p.Event == "retry" {
				retries++
			}
			mu.Unlock()
		},
	}
	_, err := c.Run(context.Background(), "fail", specJSON(t, testSpec{FailAt: 1, CrashAt: -1}), taskLabels(3))
	if err == nil || !strings.Contains(err.Error(), "t/1 exploded") {
		t.Fatalf("err = %v, want the daemon's root cause surfaced", err)
	}
	if retries != 0 {
		t.Fatalf("%d retries for a deliberate task error over TCP", retries)
	}
}

// TestProbe exercises the -doctor primitive against a live daemon and
// a dead address.
func TestProbe(t *testing.T) {
	srv := &Server{Run: scriptedRun, Capacity: 4}
	addr, _ := startTestServer(t, srv)
	info, err := Probe(context.Background(), addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Host != addr || info.Version != ProtocolVersion || info.Capacity != 4 {
		t.Fatalf("probe = %+v, want host %s, version %d, capacity 4", info, addr, ProtocolVersion)
	}
	if info.RTT <= 0 {
		t.Fatalf("probe RTT = %v, want > 0", info.RTT)
	}
	if info.Active != 0 || info.Served != 0 {
		t.Fatalf("idle daemon reports active=%d served=%d", info.Active, info.Served)
	}

	if _, err := Probe(context.Background(), deadAddr(t), 500*time.Millisecond); err == nil {
		t.Fatal("probe of a dead address succeeded")
	}
}

// TestProbeCountsServedTasks: the served counter in Health must
// reflect delivered results, so -doctor can show fleet utilization.
func TestProbeCountsServedTasks(t *testing.T) {
	srv := &Server{Run: scriptedRun}
	addr, _ := startTestServer(t, srv)
	if _, err := (&Coordinator{
		Transport: &TCPTransport{Hosts: []string{addr}},
	}).Run(context.Background(), "count", specJSON(t, testSpec{FailAt: -1, CrashAt: -1}), taskLabels(4)); err != nil {
		t.Fatal(err)
	}
	info, err := Probe(context.Background(), addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Served != 4 {
		t.Fatalf("served = %d after a 4-task run, want 4", info.Served)
	}
}

// TestCoordinatorCancellationReachesTCP: canceling the run context
// must unblock TCP sessions just as it kills subprocess workers.
func TestCoordinatorCancellationReachesTCP(t *testing.T) {
	srv := &Server{Run: scriptedRun, HeartbeatInterval: 20 * time.Millisecond}
	addr, _ := startTestServer(t, srv)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := (&Coordinator{
			Transport: &TCPTransport{Hosts: []string{addr}},
		}).Run(ctx, "cancelled", specJSON(t, testSpec{FailAt: -1, CrashAt: -1, SleepMS: 5000}), taskLabels(2))
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not reach the TCP session")
	}
}
