package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"
)

// ProtocolVersion is the fleet wire-protocol revision. Coordinator and
// daemon exchange versions in the hello handshake and refuse to talk
// across a mismatch — the protocol carries opaque experiment specs, so
// a silent skew would surface as confusing task failures instead of
// one clear error. Bump it on any incompatible framing or message
// change.
const ProtocolVersion = 1

// Defaults for the TCP transport's two liveness knobs.
const (
	// DefaultDialTimeout bounds connecting to a daemon and completing
	// the hello handshake.
	DefaultDialTimeout = 5 * time.Second
	// DefaultHeartbeatTimeout is how long the coordinator waits for any
	// frame — result or heartbeat — before declaring a daemon wedged.
	// It must comfortably exceed DefaultHeartbeatInterval.
	DefaultHeartbeatTimeout = 10 * time.Second
)

// request is one coordinator→daemon message on a TCP session. The
// subprocess transport predates it and still ships a bare order frame;
// over TCP every client frame is typed so the daemon can multiplex
// handshakes, health probes and work on one protocol.
type request struct {
	// Type is reqHello, reqPing or reqOrder.
	Type string `json:"type"`
	// Version is the client's ProtocolVersion (hello only).
	Version int `json:"version,omitempty"`
	// Spec, Indices and Labels mirror order (order only).
	Spec    json.RawMessage `json:"spec,omitempty"`
	Indices []int           `json:"indices,omitempty"`
	Labels  []string        `json:"labels,omitempty"`
}

const (
	reqHello = "hello"
	reqPing  = "ping"
	reqOrder = "order"
)

// Daemon→coordinator frame types beyond the worker set
// (result/error/done), TCP sessions only.
const (
	// msgHello acknowledges the handshake and carries a Health snapshot.
	msgHello = "hello"
	// msgPong answers a ping with a fresh Health snapshot.
	msgPong = "pong"
	// msgHeartbeat is sent periodically while an order runs so the
	// coordinator can tell a slow simulation from a wedged daemon. It
	// carries no payload and is invisible above the session layer.
	msgHeartbeat = "heartbeat"
)

// Health is a daemon's self-description, returned in hello and pong
// frames and surfaced by Probe (the -doctor subcommand).
type Health struct {
	// Version is the daemon's ProtocolVersion.
	Version int `json:"version"`
	// Capacity is the daemon's advertised per-order worker-pool size.
	Capacity int `json:"capacity"`
	// Active is the number of orders executing right now.
	Active int `json:"active"`
	// Served counts task results delivered since the daemon started.
	Served int64 `json:"served"`
	// UptimeS is seconds since the daemon started serving.
	UptimeS float64 `json:"uptime_s"`
}

// TCPTransport reaches long-lived worker daemons (Server, usually
// `experiments -serve`) over TCP — the transport behind the Remote
// executor. Shard attempt k tries Hosts[(shard+attempt+k)%len] first
// and fails over through the rest of the list, so a crashed daemon's
// requeued work lands on a surviving host and repeated retries do not
// hammer one machine. connect fails only when no configured host
// accepts a session.
type TCPTransport struct {
	// Hosts lists daemon addresses as host:port. Required.
	Hosts []string
	// DialTimeout bounds connect+handshake per host; 0 means
	// DefaultDialTimeout.
	DialTimeout time.Duration
	// HeartbeatTimeout is the silence budget per receive; 0 means
	// DefaultHeartbeatTimeout. Daemons heartbeat every
	// DefaultHeartbeatInterval while working, so expiry means a wedged
	// or unreachable daemon, not a slow simulation.
	HeartbeatTimeout time.Duration
}

// connect implements Transport, failing over through the host list.
func (t *TCPTransport) connect(ctx context.Context, shard, attempt int) (session, error) {
	if len(t.Hosts) == 0 {
		return nil, errors.New("shard: TCPTransport needs at least one host")
	}
	dialTO := t.DialTimeout
	if dialTO <= 0 {
		dialTO = DefaultDialTimeout
	}
	hbTO := t.HeartbeatTimeout
	if hbTO <= 0 {
		hbTO = DefaultHeartbeatTimeout
	}
	var fails []string
	for k := range t.Hosts {
		host := t.Hosts[(shard+attempt+k)%len(t.Hosts)]
		sess, _, err := dialWorker(ctx, host, dialTO, hbTO)
		if err == nil {
			return sess, nil
		}
		fails = append(fails, fmt.Sprintf("%s: %v", host, err))
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("shard: no worker daemon reachable: %s", strings.Join(fails, "; "))
}

// dialWorker opens one daemon session: TCP connect, then the hello
// handshake under the same deadline — a daemon whose kernel accepted
// the connection but whose process is wedged (stopped, hung) must fail
// the dial, not hang it. Returns the daemon's hello Health snapshot
// alongside the session (Probe wants it; connect discards it).
func dialWorker(ctx context.Context, host string, dialTO, hbTO time.Duration) (*tcpSession, *Health, error) {
	d := net.Dialer{Timeout: dialTO}
	conn, err := d.DialContext(ctx, "tcp", host)
	if err != nil {
		return nil, nil, err
	}
	//lint:allow detlint network I/O deadlines are wall-clock by nature; they bound a hung peer, not simulated time
	if err := conn.SetDeadline(time.Now().Add(dialTO)); err != nil {
		conn.Close() //lint:allow errlint the handshake error is the one to report; close is failure-path cleanup
		return nil, nil, err
	}
	if err := writeFrame(conn, request{Type: reqHello, Version: ProtocolVersion}); err != nil {
		conn.Close() //lint:allow errlint the handshake error is the one to report; close is failure-path cleanup
		return nil, nil, fmt.Errorf("handshake: %w", err)
	}
	var rep reply
	if err := readFrame(conn, &rep); err != nil {
		conn.Close() //lint:allow errlint the handshake error is the one to report; close is failure-path cleanup
		return nil, nil, fmt.Errorf("handshake: %w", err)
	}
	switch {
	case rep.Type == msgError:
		conn.Close() //lint:allow errlint the handshake error is the one to report; close is failure-path cleanup
		return nil, nil, fmt.Errorf("daemon refused session: %s", rep.Error)
	case rep.Type != msgHello || rep.Health == nil:
		conn.Close() //lint:allow errlint the handshake error is the one to report; close is failure-path cleanup
		return nil, nil, fmt.Errorf("handshake: daemon sent %q frame, want hello", rep.Type)
	case rep.Health.Version != ProtocolVersion:
		conn.Close() //lint:allow errlint the handshake error is the one to report; close is failure-path cleanup
		return nil, nil, fmt.Errorf("protocol version mismatch: daemon speaks v%d, this binary v%d", rep.Health.Version, ProtocolVersion)
	}
	if err := conn.SetDeadline(time.Time{}); err != nil {
		conn.Close() //lint:allow errlint the handshake error is the one to report; close is failure-path cleanup
		return nil, nil, err
	}
	return &tcpSession{conn: conn, host: host, hbTimeout: hbTO}, rep.Health, nil
}

// tcpSession is one coordinator-side daemon conversation.
type tcpSession struct {
	conn      net.Conn
	host      string
	hbTimeout time.Duration

	once     sync.Once
	closeErr error
}

func (s *tcpSession) sendOrder(o order) error {
	//lint:allow detlint network I/O deadlines are wall-clock by nature; they bound a hung peer, not simulated time
	if err := s.conn.SetWriteDeadline(time.Now().Add(s.hbTimeout)); err != nil {
		return err
	}
	err := writeFrame(s.conn, request{Type: reqOrder, Spec: o.Spec, Indices: o.Indices, Labels: o.Labels})
	if err != nil {
		return err
	}
	return s.conn.SetWriteDeadline(time.Time{})
}

// recv reads the next substantive reply, silently consuming heartbeat
// frames. Each read is bounded by the heartbeat timeout: a working
// daemon always produces *something* within one interval, so expiry
// means the daemon is wedged and the shard should requeue elsewhere.
func (s *tcpSession) recv(rep *reply) error {
	for {
		//lint:allow detlint network I/O deadlines are wall-clock by nature; they bound a hung peer, not simulated time
		if err := s.conn.SetReadDeadline(time.Now().Add(s.hbTimeout)); err != nil {
			return err
		}
		// Zero the destination: JSON leaves absent fields untouched, and
		// rep still carries the previous frame.
		*rep = reply{}
		if err := readFrame(s.conn, rep); err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				return fmt.Errorf("daemon sent no frame or heartbeat within %v: %w", s.hbTimeout, err)
			}
			return err
		}
		if rep.Type != msgHeartbeat {
			return nil
		}
	}
}

func (s *tcpSession) peer() string { return s.host }

func (s *tcpSession) close() error {
	s.once.Do(func() { s.closeErr = s.conn.Close() })
	return s.closeErr
}

// Probe checks one daemon's health for the -doctor subcommand: full
// dial + handshake (so it exercises exactly what a real run would),
// returning the daemon's self-reported Health and the observed
// handshake round-trip time. timeout <= 0 means DefaultDialTimeout.
func Probe(ctx context.Context, host string, timeout time.Duration) (*ProbeInfo, error) {
	if timeout <= 0 {
		timeout = DefaultDialTimeout
	}
	//lint:allow detlint probe round-trip time is operational wall-clock metadata, not simulation state
	start := time.Now()
	sess, health, err := dialWorker(ctx, host, timeout, timeout)
	if err != nil {
		return nil, err
	}
	rtt := time.Since(start)
	//lint:allow errlint the probe succeeded; hang-up errors on a drained handshake socket carry no signal
	_ = sess.close()
	return &ProbeInfo{Host: host, Health: *health, RTT: rtt}, nil
}

// ProbeInfo is one daemon's doctor report.
type ProbeInfo struct {
	// Host is the probed address.
	Host string
	// Health is the daemon's hello snapshot.
	Health
	// RTT is the observed dial+handshake round trip.
	RTT time.Duration
}
