package shard

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os/exec"
	"sync"

	"repro/internal/records"
)

// DefaultRetries is the per-shard respawn budget after worker crashes
// when Coordinator.Retries is zero.
const DefaultRetries = 2

// Progress describes one coordinator event. Callbacks are serialized.
type Progress struct {
	// Shard is the shard index; Attempt the 0-based spawn attempt for
	// that shard (>0 means a respawn after a crash).
	Shard, Attempt int
	// Event is "spawn", "result", "retry" or "done".
	Event string
	// Index and Label identify the finished task ("result" events;
	// Index is -1 otherwise).
	Index int
	Label string
	// Err is the crash that triggered a "retry".
	Err error
	// Done counts results received across all shards; Total the run's
	// task count.
	Done, Total int
}

// Coordinator fans an enumerated task list out across workers — OS
// subprocesses or remote TCP daemons, depending on the Transport — and
// reassembles their streamed results into one manifest.
type Coordinator struct {
	// Shards is the concurrent worker session count; <= 0 means 1.
	// Shards larger than the task count are clamped (see Plan).
	Shards int
	// Retries is the per-shard respawn budget after a worker crash:
	// 0 means DefaultRetries, negative disables retries. Each respawned
	// worker receives only the shard's unfinished indices — results the
	// dead worker streamed before crashing are kept.
	Retries int
	// Transport opens worker sessions. Nil falls back to a
	// ProcessTransport built from Command and Stderr.
	Transport Transport
	// Command returns a fresh, unstarted worker process wired to speak
	// the shard protocol on its stdin/stdout (e.g. the experiments
	// binary with -shard-worker). Used only when Transport is nil; one
	// of the two is required. The coordinator sets Stdin, Stdout and
	// Stderr itself and kills the process when ctx ends.
	Command func(ctx context.Context) *exec.Cmd
	// PerShardWorkers records each worker process's internal pool size
	// in its shard manifest's Workers field (<= 1 means 1), so the
	// merged manifest's Workers sum reflects the run's true concurrent
	// simulation capacity. Pure provenance — the coordinator itself
	// never schedules within a shard.
	PerShardWorkers int
	// OnProgress, if set, receives coordinator events. Calls are
	// serialized; the callback must not block for long.
	OnProgress func(Progress)
	// Stderr receives every worker's stderr (process transport only);
	// nil means os.Stderr.
	Stderr io.Writer
}

// crashError marks a worker process that died before finishing its
// shard — the retryable failure class, unlike a task error the worker
// reported deliberately.
type crashError struct{ err error }

func (e *crashError) Error() string { return e.err.Error() }
func (e *crashError) Unwrap() error { return e.err }

// Run partitions the labeled task list with Plan, executes every shard
// on worker subprocesses, and merges the per-shard manifests back into
// global task order via records.MergeManifests — which doubles as the
// integrity check that no task was lost or duplicated across crashes
// and retries. spec is the opaque experiment description every worker
// receives verbatim. The first shard failure cancels the others; as in
// runner.Pool, a real failure is never masked by the cancellation
// fallout it causes in sibling shards.
func (c *Coordinator) Run(ctx context.Context, label string, spec json.RawMessage, labels []string) (*records.RunManifest, error) {
	transport := c.Transport
	if transport == nil {
		if c.Command == nil {
			return nil, errors.New("shard: Coordinator needs a Transport or a Command")
		}
		transport = &ProcessTransport{Command: c.Command, Stderr: c.Stderr}
	}
	if len(labels) == 0 {
		return &records.RunManifest{Label: label}, nil
	}
	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	plan := Plan(len(labels), c.Shards)
	sink := &progressSink{fn: c.OnProgress, total: len(labels)}
	manifests := make([]*records.RunManifest, len(plan))
	errs := make([]error, len(plan))
	var wg sync.WaitGroup
	for si := range plan {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			m, err := c.runShard(ctx, transport, si, spec, labels, plan[si], sink)
			manifests[si], errs[si] = m, err
			if err != nil {
				cancel()
			}
		}(si)
	}
	wg.Wait()

	var cancelFallout error
	for si, err := range errs {
		if err == nil {
			continue
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			if cancelFallout == nil {
				cancelFallout = fmt.Errorf("shard %d: %w", si, err)
			}
			continue
		}
		return nil, fmt.Errorf("shard %d: %w", si, err)
	}
	if err := parent.Err(); err != nil {
		return nil, err
	}
	if cancelFallout != nil {
		return nil, cancelFallout
	}
	merged, err := records.MergeManifests(label, labels, manifests...)
	if err != nil {
		return nil, err
	}
	return merged, nil
}

// runShard drives one shard to completion, respawning crashed workers
// on the unfinished remainder until the retry budget runs out.
func (c *Coordinator) runShard(ctx context.Context, transport Transport, si int, spec json.RawMessage, labels []string, indices []int, sink *progressSink) (*records.RunManifest, error) {
	retries := c.Retries
	switch {
	case retries == 0:
		retries = DefaultRetries
	case retries < 0:
		retries = 0
	}
	m := &records.RunManifest{Label: fmt.Sprintf("shard%d", si), Workers: max(1, c.PerShardWorkers)}
	remaining := append([]int(nil), indices...)
	for attempt := 0; ; attempt++ {
		sink.report(Progress{Shard: si, Attempt: attempt, Event: "spawn", Index: -1})
		var err error
		remaining, err = c.runWorker(ctx, transport, si, attempt, spec, labels, remaining, m, sink)
		if err == nil {
			sink.report(Progress{Shard: si, Attempt: attempt, Event: "done", Index: -1})
			return m, nil
		}
		var crash *crashError
		if !errors.As(err, &crash) {
			return m, err
		}
		if ctx.Err() != nil {
			return m, ctx.Err()
		}
		if attempt >= retries {
			return m, fmt.Errorf("%d task(s) unfinished after %d worker attempt(s): %w", len(remaining), attempt+1, err)
		}
		sink.report(Progress{Shard: si, Attempt: attempt, Event: "retry", Index: -1, Err: err})
	}
}

// runWorker opens one worker session on the given indices, streams its
// results into m, and returns the indices still unfinished. A nil
// error means the worker sent done with nothing left over; a
// *crashError means the session died mid-shard and the remainder is
// retryable. A connect failure is terminal: transports fail over
// internally, so it means no worker is reachable at all.
func (c *Coordinator) runWorker(ctx context.Context, transport Transport, si, attempt int, spec json.RawMessage, labels []string, indices []int, m *records.RunManifest, sink *progressSink) ([]int, error) {
	lbls := make([]string, len(indices))
	assigned := make(map[int]bool, len(indices))
	for j, i := range indices {
		lbls[j] = labels[i]
		assigned[i] = true
	}
	sess, err := transport.connect(ctx, si, attempt)
	if err != nil {
		return indices, err
	}
	// The reaper guarantees the worker never outlives ctx even when the
	// transport did not wire cancellation itself (close is documented
	// safe to call twice and concurrently with recv).
	finished := make(chan struct{})
	defer close(finished)
	go func() {
		//lint:allow detlint shutdown reaper: both arms end the same session, and results were already ordered by index
		select {
		case <-ctx.Done():
			//lint:allow errlint the reaper only unblocks recv; the order path reports the root-cause error
			_ = sess.close()
		case <-finished:
		}
	}()

	if err := sess.sendOrder(order{Spec: spec, Indices: indices, Labels: lbls}); err != nil {
		closeErr := sess.close()
		if ctx.Err() != nil {
			return indices, ctx.Err()
		}
		// A worker that dies before reading its order (instant crash,
		// connection reset) is the same retryable class as one dying
		// mid-shard.
		return indices, &crashError{fmt.Errorf("worker %sdied taking its order (send: %v, exit: %v)", peerPrefix(sess), err, closeErr)}
	}

	got := make(map[int]bool, len(indices))
	var done bool
	var workerErr, streamErr error
	for !done && workerErr == nil {
		var rep reply
		if err := sess.recv(&rep); err != nil {
			streamErr = err
			break
		}
		switch rep.Type {
		case msgResult:
			switch {
			case !assigned[rep.Index]:
				workerErr = fmt.Errorf("worker reported unassigned task index %d", rep.Index)
			case got[rep.Index]:
				workerErr = fmt.Errorf("worker reported task index %d twice", rep.Index)
			case rep.Summary == nil:
				workerErr = fmt.Errorf("worker result for index %d carries no summary", rep.Index)
			default:
				got[rep.Index] = true
				sum := *rep.Summary
				// Provenance, recorded only for transports with a real
				// host identity: which host delivered the row and on
				// which spawn attempt (>0 means the task was requeued
				// after a crash). Subprocess and in-process manifests
				// stay byte-identical by carrying neither field.
				if host := sess.peer(); host != "" {
					sum.Host = host
					sum.Attempt = attempt
				}
				m.Runs = append(m.Runs, sum)
				sink.report(Progress{
					Shard: si, Attempt: attempt, Event: "result",
					Index: rep.Index, Label: sum.ID, Done: 1,
				})
			}
		case msgError:
			workerErr = errors.New(rep.Error)
		case msgDone:
			done = true
		default:
			workerErr = fmt.Errorf("worker sent unknown frame type %q", rep.Type)
		}
	}
	// Tear the session down unconditionally: a worker that keeps
	// writing after done/error must not wedge the shard.
	closeErr := sess.close()

	remaining := indices[:0]
	for _, i := range indices {
		if !got[i] {
			remaining = append(remaining, i)
		}
	}
	switch {
	case workerErr != nil:
		return remaining, workerErr
	case done && len(remaining) > 0:
		return remaining, fmt.Errorf("worker reported done with %d assigned task(s) missing", len(remaining))
	case done:
		return nil, nil
	default:
		if ctx.Err() != nil {
			return remaining, ctx.Err()
		}
		return remaining, &crashError{fmt.Errorf("worker %sdied mid-shard (stream: %v, exit: %v)", peerPrefix(sess), streamErr, closeErr)}
	}
}

// peerPrefix renders a session's host identity for error messages —
// "10.0.0.2:7070 " or "" for anonymous subprocess workers, keeping the
// legacy message text unchanged for them.
func peerPrefix(sess session) string {
	if p := sess.peer(); p != "" {
		return p + " "
	}
	return ""
}

// progressSink serializes OnProgress callbacks and maintains the
// cross-shard completion count.
type progressSink struct {
	mu    sync.Mutex
	fn    func(Progress)
	done  int
	total int
}

func (s *progressSink) report(p Progress) {
	if s.fn == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done += p.Done
	p.Done = s.done
	p.Total = s.total
	s.fn(p)
}
