package shard

import (
	"context"
	"fmt"
	"time"

	"repro/internal/faults"
	"repro/internal/retry"
)

// FaultTransport wraps a Transport with a deterministic fault injector:
// partitions refuse connections to matched hosts, and frame faults
// delay, reset, drop, or duplicate worker replies. Resets surface as
// the coordinator's crash class (post-session failure), exercising the
// requeue machinery; partitions surface as connect errors, exercising
// retry at the dial layer.
type FaultTransport struct {
	Inner Transport
	Inj   *faults.Injector
}

// connect implements Transport.
func (t *FaultTransport) connect(ctx context.Context, shard, attempt int) (session, error) {
	sess, err := t.Inner.connect(ctx, shard, attempt)
	if err != nil {
		return nil, err
	}
	target := sess.peer()
	for _, f := range t.Inj.Decide(faults.LayerTransport, faults.OpConnect, target) {
		if f.Kind == faults.KindPartition {
			sess.close() //lint:allow errlint the injected partition is the error to report; close is failure-path cleanup
			return nil, fmt.Errorf("shard: fault injection: host %q partitioned", target)
		}
	}
	return &faultSession{inner: sess, inj: t.Inj}, nil
}

// faultSession applies frame faults to one worker conversation.
type faultSession struct {
	inner   session
	inj     *faults.Injector
	last    reply
	hasLast bool
}

func (s *faultSession) sendOrder(o order) error { return s.inner.sendOrder(o) }

func (s *faultSession) recv(rep *reply) error {
	drop := false
	for _, f := range s.inj.Decide(faults.LayerTransport, faults.OpFrame, s.inner.peer()) {
		switch f.Kind {
		case faults.KindDelay:
			time.Sleep(f.Delay) //lint:allow retrylint injected latency fault, not a retry loop
		case faults.KindReset:
			s.inner.close() //lint:allow errlint the injected reset is the error to report; close is failure-path cleanup
			return fmt.Errorf("shard: fault injection: connection reset by peer")
		case faults.KindDup:
			if s.hasLast {
				*rep = s.last
				return nil
			}
		case faults.KindDrop:
			drop = true
		}
	}
	if err := s.inner.recv(rep); err != nil {
		return err
	}
	if drop {
		// The dropped frame vanishes; deliver the next one instead.
		if err := s.inner.recv(rep); err != nil {
			return err
		}
	}
	s.last = *rep
	s.hasLast = true
	return nil
}

func (s *faultSession) peer() string { return s.inner.peer() }
func (s *faultSession) close() error { return s.inner.close() }

// RetryTransport retries session establishment under the shared retry
// policy. Plain transports treat a connect failure as terminal (all
// hosts down); wrapping one in RetryTransport lets the dial path ride
// out transient partitions and worker restarts instead.
type RetryTransport struct {
	Inner  Transport
	Policy retry.Policy
}

// connect implements Transport.
func (t *RetryTransport) connect(ctx context.Context, shard, attempt int) (session, error) {
	var sess session
	err := t.Policy.Do(ctx, func(ctx context.Context) error {
		s, err := t.Inner.connect(ctx, shard, attempt)
		if err != nil {
			return err
		}
		sess = s
		return nil
	})
	if err != nil {
		return nil, err
	}
	return sess, nil
}
