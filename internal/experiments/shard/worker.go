package shard

import (
	"context"
	"fmt"
	"io"
	"sync"

	"repro/internal/records"
)

// RunFunc is the worker-side task executor. It receives the opaque
// experiment spec from the order frame, the worker's assigned global
// task indices with their matching labels, and an emit function that
// streams one finished task's manifest row back to the coordinator.
// emit must be called exactly once per completed index; calls may come
// from any goroutine (ServeWorker serializes the writes). Returning an
// error reports a deliberate task failure — the coordinator fails the
// whole run rather than retrying, because the simulations are
// deterministic.
type RunFunc func(ctx context.Context, spec []byte, indices []int, labels []string, emit func(index int, s records.RunSummary) error) error

// ServeWorker runs the worker half of the shard protocol on r/w
// (stdin/stdout when invoked as a subprocess): it reads the single
// order frame, hands the assignment to run, streams emitted results,
// and terminates the stream with a done frame — or an error frame
// carrying run's failure.
func ServeWorker(ctx context.Context, r io.Reader, w io.Writer, run RunFunc) error {
	var o order
	if err := readFrame(r, &o); err != nil {
		return fmt.Errorf("shard worker: reading order: %w", err)
	}
	if len(o.Labels) != len(o.Indices) {
		return fmt.Errorf("shard worker: order has %d labels for %d indices", len(o.Labels), len(o.Indices))
	}
	var mu sync.Mutex
	emit := func(index int, s records.RunSummary) error {
		mu.Lock()
		defer mu.Unlock()
		return writeFrame(w, reply{Type: msgResult, Index: index, Summary: &s})
	}
	if err := run(ctx, o.Spec, o.Indices, o.Labels, emit); err != nil {
		mu.Lock()
		defer mu.Unlock()
		// Best-effort: the coordinator learns the root cause from this
		// frame; if the pipe is already gone it sees a crash instead.
		//lint:allow errlint best-effort root-cause frame; a dead pipe already surfaces as a coordinator-side crash
		_ = writeFrame(w, reply{Type: msgError, Error: err.Error()})
		return err
	}
	mu.Lock()
	defer mu.Unlock()
	return writeFrame(w, reply{Type: msgDone})
}
