package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/records"
)

// The coordinator needs real worker subprocesses. Re-exec the test
// binary: when SHARD_TEST_WORKER=1, TestMain serves the worker protocol
// on stdin/stdout instead of running tests — the same trick the
// experiments binary plays with its -shard-worker flag.
func TestMain(m *testing.M) {
	if os.Getenv("SHARD_TEST_WORKER") == "1" {
		if err := ServeWorker(context.Background(), os.Stdin, os.Stdout, scriptedRun); err != nil {
			fmt.Fprintln(os.Stderr, "shard test worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// testSpec scripts the re-exec'd worker: which task fails, when the
// process self-kills, and how results are derived from indices.
type testSpec struct {
	// FailAt makes the task with this global index return an error
	// (-1: none) — the deliberate, non-retryable failure class.
	FailAt int `json:"fail_at"`
	// CrashAt self-kills the process after emitting this many results
	// (-1: never) — the retryable failure class.
	CrashAt int `json:"crash_at"`
	// CrashFlag, when set, arms CrashAt only for the process that
	// creates this file first, so a respawned worker runs clean.
	CrashFlag string `json:"crash_flag,omitempty"`
	// SleepMS stalls each task, for cancellation tests.
	SleepMS int `json:"sleep_ms"`
	// Scale derives each task's TsimS as index*Scale, so the
	// coordinator can verify rows came from the right tasks.
	Scale float64 `json:"scale"`
}

func scriptedRun(ctx context.Context, raw []byte, indices []int, labels []string, emit func(int, records.RunSummary) error) error {
	var spec testSpec
	if err := json.Unmarshal(raw, &spec); err != nil {
		return err
	}
	armed := spec.CrashAt >= 0
	if armed && spec.CrashFlag != "" {
		f, err := os.OpenFile(spec.CrashFlag, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
		if err != nil {
			armed = false // another process crashed already; run clean
		} else {
			f.Close()
		}
	}
	if armed && spec.CrashAt == 0 {
		os.Exit(3)
	}
	for j, idx := range indices {
		if spec.SleepMS > 0 {
			select {
			case <-time.After(time.Duration(spec.SleepMS) * time.Millisecond):
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		if idx == spec.FailAt {
			return fmt.Errorf("task %s exploded", labels[j])
		}
		if err := emit(idx, records.RunSummary{ID: labels[j], Kind: "shard-test", Mode: "test", TsimS: float64(idx) * spec.Scale}); err != nil {
			return err
		}
		if armed && j+1 >= spec.CrashAt {
			os.Exit(3)
		}
	}
	return nil
}

func specJSON(t *testing.T, s testSpec) json.RawMessage {
	t.Helper()
	raw, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func workerCmd(t *testing.T) func(context.Context) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return func(ctx context.Context) *exec.Cmd {
		cmd := exec.CommandContext(ctx, exe)
		cmd.Env = append(os.Environ(), "SHARD_TEST_WORKER=1")
		return cmd
	}
}

func taskLabels(n int) []string {
	labels := make([]string, n)
	for i := range labels {
		labels[i] = fmt.Sprintf("t/%d", i)
	}
	return labels
}

func TestCoordinatorHappyPath(t *testing.T) {
	var mu sync.Mutex
	events := map[string]int{}
	c := Coordinator{
		Shards:  3,
		Command: workerCmd(t),
		OnProgress: func(p Progress) {
			mu.Lock()
			events[p.Event]++
			mu.Unlock()
		},
	}
	spec := specJSON(t, testSpec{FailAt: -1, CrashAt: -1, Scale: 2})
	m, err := c.Run(context.Background(), "happy", spec, taskLabels(10))
	if err != nil {
		t.Fatal(err)
	}
	if m.Label != "happy" || len(m.Runs) != 10 {
		t.Fatalf("manifest = %q with %d rows, want happy/10", m.Label, len(m.Runs))
	}
	for i, r := range m.Runs {
		if r.ID != fmt.Sprintf("t/%d", i) || r.TsimS != float64(i)*2 {
			t.Fatalf("row %d = {%s %g}, want {t/%d %g}: global order not restored", i, r.ID, r.TsimS, i, float64(i)*2)
		}
	}
	if m.Workers != 3 {
		t.Fatalf("merged workers = %d, want 3 (one per shard)", m.Workers)
	}
	if events["spawn"] != 3 || events["done"] != 3 || events["result"] != 10 || events["retry"] != 0 {
		t.Fatalf("events = %v, want 3 spawns, 3 dones, 10 results, 0 retries", events)
	}
}

func TestCoordinatorSingleShardMatchesMany(t *testing.T) {
	spec := specJSON(t, testSpec{FailAt: -1, CrashAt: -1, Scale: 3})
	labels := taskLabels(7)
	one, err := (&Coordinator{Shards: 1, Command: workerCmd(t)}).Run(context.Background(), "x", spec, labels)
	if err != nil {
		t.Fatal(err)
	}
	many, err := (&Coordinator{Shards: 4, Command: workerCmd(t)}).Run(context.Background(), "x", spec, labels)
	if err != nil {
		t.Fatal(err)
	}
	one.Workers, many.Workers = 0, 0
	var a, b bytes.Buffer
	if err := one.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := many.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("1-shard and 4-shard manifests diverge:\n%s\n%s", a.String(), b.String())
	}
}

func TestCoordinatorTaskErrorFailsWithoutRetry(t *testing.T) {
	var mu sync.Mutex
	retries := 0
	c := Coordinator{
		Shards:  2,
		Command: workerCmd(t),
		Stderr:  io.Discard, // the worker's own error report is expected noise
		OnProgress: func(p Progress) {
			mu.Lock()
			if p.Event == "retry" {
				retries++
			}
			mu.Unlock()
		},
	}
	spec := specJSON(t, testSpec{FailAt: 4, CrashAt: -1})
	_, err := c.Run(context.Background(), "fail", spec, taskLabels(8))
	if err == nil || !strings.Contains(err.Error(), "t/4 exploded") {
		t.Fatalf("err = %v, want the worker's root cause surfaced", err)
	}
	if retries != 0 {
		t.Fatalf("%d retries for a deliberate task error; deterministic failures must not be retried", retries)
	}
}

func TestCoordinatorCrashIsRetriedOnRemainder(t *testing.T) {
	var mu sync.Mutex
	var retries int
	c := Coordinator{
		Shards:  2,
		Command: workerCmd(t),
		OnProgress: func(p Progress) {
			mu.Lock()
			if p.Event == "retry" {
				retries++
			}
			mu.Unlock()
		},
	}
	flag := filepath.Join(t.TempDir(), "crashed")
	// The first worker to grab the flag file dies after streaming two
	// results; its respawn (and the other shard) run clean.
	spec := specJSON(t, testSpec{FailAt: -1, CrashAt: 2, CrashFlag: flag, Scale: 1})
	m, err := c.Run(context.Background(), "crashy", spec, taskLabels(9))
	if err != nil {
		t.Fatal(err)
	}
	if retries != 1 {
		t.Fatalf("%d retries, want exactly 1", retries)
	}
	if _, err := os.Stat(flag); err != nil {
		t.Fatalf("crash flag missing — fault was never injected: %v", err)
	}
	if len(m.Runs) != 9 {
		t.Fatalf("%d rows after crash+retry, want 9", len(m.Runs))
	}
	for i, r := range m.Runs {
		if r.ID != fmt.Sprintf("t/%d", i) {
			t.Fatalf("row %d = %s: merge produced wrong order after retry", i, r.ID)
		}
	}
}

func TestCoordinatorCrashExhaustsRetries(t *testing.T) {
	c := Coordinator{
		Shards:  2,
		Retries: 1,
		Command: workerCmd(t),
	}
	// Every attempt dies before emitting anything: retries cannot help.
	spec := specJSON(t, testSpec{FailAt: -1, CrashAt: 0})
	_, err := c.Run(context.Background(), "doomed", spec, taskLabels(6))
	if err == nil {
		t.Fatal("endlessly crashing worker succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "2 worker attempt(s)") || !strings.Contains(msg, "died mid-shard") {
		t.Fatalf("err = %v, want attempts count and crash root cause", err)
	}
}

func TestCoordinatorCancellationKillsWorkers(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	c := Coordinator{Shards: 2, Command: workerCmd(t)}
	spec := specJSON(t, testSpec{FailAt: -1, CrashAt: -1, SleepMS: 5000})
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, "cancelled", spec, taskLabels(4))
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancellation did not reach the worker processes")
	}
}

func TestCoordinatorRequiresCommand(t *testing.T) {
	if _, err := (&Coordinator{}).Run(context.Background(), "x", nil, taskLabels(1)); err == nil {
		t.Fatal("missing Command accepted")
	}
}

func TestCoordinatorEmptyTaskList(t *testing.T) {
	m, err := (&Coordinator{Command: workerCmd(t)}).Run(context.Background(), "empty", nil, nil)
	if err != nil || len(m.Runs) != 0 {
		t.Fatalf("empty run = %v, %v", m, err)
	}
}

func TestPlan(t *testing.T) {
	cases := []struct{ n, k, shards int }{
		{10, 3, 3}, {10, 1, 1}, {3, 8, 3}, {1, 1, 1}, {5, 0, 1}, {4, -2, 1},
	}
	for _, c := range cases {
		plan := Plan(c.n, c.k)
		if len(plan) != c.shards {
			t.Fatalf("Plan(%d,%d) = %d shards, want %d", c.n, c.k, len(plan), c.shards)
		}
		next, min, max := 0, c.n, 0
		for _, shard := range plan {
			if len(shard) < min {
				min = len(shard)
			}
			if len(shard) > max {
				max = len(shard)
			}
			for _, i := range shard {
				if i != next {
					t.Fatalf("Plan(%d,%d) not contiguous at %d", c.n, c.k, i)
				}
				next++
			}
		}
		if next != c.n {
			t.Fatalf("Plan(%d,%d) covered %d tasks", c.n, c.k, next)
		}
		if max-min > 1 {
			t.Fatalf("Plan(%d,%d) unbalanced: sizes in [%d,%d]", c.n, c.k, min, max)
		}
	}
	if Plan(0, 4) != nil {
		t.Fatal("Plan(0,4) != nil")
	}
}

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	want := order{Spec: json.RawMessage(`{"a":1}`), Indices: []int{3, 1}, Labels: []string{"x", "y"}}
	if err := writeFrame(&buf, want); err != nil {
		t.Fatal(err)
	}
	var got order
	if err := readFrame(&buf, &got); err != nil {
		t.Fatal(err)
	}
	if string(got.Spec) != `{"a":1}` || len(got.Indices) != 2 || got.Indices[0] != 3 || got.Labels[1] != "y" {
		t.Fatalf("round trip = %+v", got)
	}
	if err := readFrame(&buf, &got); err != io.EOF {
		t.Fatalf("empty stream read = %v, want io.EOF", err)
	}
}

func TestFrameTruncationIsUnexpectedEOF(t *testing.T) {
	var buf bytes.Buffer
	if err := writeFrame(&buf, reply{Type: msgDone}); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-2]
	var rep reply
	if err := readFrame(bytes.NewReader(cut), &rep); err != io.ErrUnexpectedEOF {
		t.Fatalf("truncated frame read = %v, want io.ErrUnexpectedEOF", err)
	}
}

func TestFrameLengthLimit(t *testing.T) {
	var hdr bytes.Buffer
	if err := writeFrame(&hdr, reply{Type: msgDone}); err != nil {
		t.Fatal(err)
	}
	raw := hdr.Bytes()
	raw[0], raw[1], raw[2], raw[3] = 0xff, 0xff, 0xff, 0xff
	var rep reply
	if err := readFrame(bytes.NewReader(raw), &rep); err == nil || !strings.Contains(err.Error(), "exceeds limit") {
		t.Fatalf("oversized frame read = %v, want limit error", err)
	}
}

func TestServeWorkerRejectsMalformedOrder(t *testing.T) {
	var in, out bytes.Buffer
	if err := writeFrame(&in, order{Indices: []int{0, 1}, Labels: []string{"only-one"}}); err != nil {
		t.Fatal(err)
	}
	err := ServeWorker(context.Background(), &in, &out, scriptedRun)
	if err == nil || !strings.Contains(err.Error(), "labels") {
		t.Fatalf("err = %v, want label/index mismatch", err)
	}
}
