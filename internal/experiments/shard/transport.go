package shard

import (
	"context"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
)

// Transport abstracts how a Coordinator reaches the worker that
// executes one shard attempt: spawning a subprocess on this machine
// (ProcessTransport, the -shard-worker path) or dialing a long-lived
// worker daemon over TCP (TCPTransport, the fleet path). The
// coordinator's partitioning, streaming, crash-requeue and merge logic
// is transport-agnostic; only the session setup and framing details
// differ.
//
// A connect error is terminal for the run — transports fail over
// internally (TCPTransport tries every configured host), so a failure
// here means no worker is reachable at all and retrying the shard
// could not help. Failures *after* a session is established are the
// coordinator's crash class and trigger the requeue machinery.
//
// The protocol types are internal to this package, so the interface is
// satisfiable only from here; external execution backends plug in at
// the experiments.Executor seam instead.
type Transport interface {
	// connect opens a fresh worker session for the given shard attempt.
	connect(ctx context.Context, shard, attempt int) (session, error)
}

// session is one worker conversation: ship the order, stream replies,
// tear down. close must be safe to call more than once and
// concurrently with a blocked recv (it is the coordinator's cancel
// path).
type session interface {
	// sendOrder ships the shard assignment in the transport's framing.
	sendOrder(o order) error
	// recv reads the next protocol reply, honoring transport liveness
	// (pipe EOF for processes, heartbeat deadlines for TCP).
	recv(rep *reply) error
	// peer names the worker host for provenance — "" when the transport
	// has no meaningful host identity (subprocesses), in which case no
	// provenance is recorded and manifests stay byte-identical to
	// in-process runs.
	peer() string
	// close tears the session down (kills the process / closes the
	// connection) and returns the worker's exit status where one exists.
	close() error
}

// ProcessTransport runs each shard attempt as a worker OS subprocess
// speaking the legacy untyped framing on stdin/stdout — the transport
// behind the Sharded executor and the hidden -shard-worker flag.
type ProcessTransport struct {
	// Command returns a fresh, unstarted worker process wired to speak
	// the shard protocol on its stdin/stdout. Required.
	Command func(ctx context.Context) *exec.Cmd
	// Stderr receives every worker's stderr; nil means os.Stderr.
	Stderr io.Writer
}

// connect implements Transport.
func (t *ProcessTransport) connect(ctx context.Context, shard, attempt int) (session, error) {
	if t.Command == nil {
		return nil, fmt.Errorf("shard: ProcessTransport.Command is required")
	}
	cmd := t.Command(ctx)
	cmd.Stderr = t.Stderr
	if cmd.Stderr == nil {
		cmd.Stderr = os.Stderr
	}
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, err
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("spawning worker: %w", err)
	}
	return &processSession{cmd: cmd, stdin: stdin, stdout: stdout}, nil
}

// processSession wraps one running worker subprocess.
type processSession struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stdout io.ReadCloser

	once    sync.Once
	waitErr error
}

func (s *processSession) sendOrder(o order) error {
	// Workers read exactly one order; closing stdin afterwards lets a
	// worker that reads to EOF terminate cleanly too.
	if err := writeFrame(s.stdin, o); err != nil {
		return err
	}
	return s.stdin.Close()
}

func (s *processSession) recv(rep *reply) error { return readFrame(s.stdout, rep) }

func (s *processSession) peer() string { return "" }

// close kills the worker unconditionally — already-exited processes
// ignore it, and a worker that keeps writing after done/error must not
// wedge Wait — and reaps it. The first caller wins; later callers get
// the same exit status.
func (s *processSession) close() error {
	s.once.Do(func() {
		//lint:allow errlint Kill on an already-exited worker fails by design; Wait below reports the real exit status
		_ = s.cmd.Process.Kill()
		s.waitErr = s.cmd.Wait()
	})
	return s.waitErr
}
