package experiments

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/experiments/shard"
	"repro/internal/records"
	"repro/internal/rl"
)

// The sharded entry points spawn worker OS processes. Re-exec this test
// binary: with REPRO_SHARD_WORKER=1 it serves the worker protocol on
// stdin/stdout instead of running tests — exactly what the experiments
// binary does for -shard-worker.
func TestMain(m *testing.M) {
	if os.Getenv("REPRO_SHARD_WORKER") == "1" {
		if err := ServeShardWorker(context.Background(), os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "shard worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	// With REPRO_SHARD_DAEMON=1 the binary becomes a TCP worker daemon on
	// an ephemeral port, announcing its address on stdout — the test-side
	// twin of `experiments -serve`.
	if os.Getenv("REPRO_SHARD_DAEMON") == "1" {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintln(os.Stderr, "shard daemon:", err)
			os.Exit(1)
		}
		fmt.Println(ln.Addr())
		if err := ServeShardDaemon(context.Background(), ln, 0, nil); err != nil {
			fmt.Fprintln(os.Stderr, "shard daemon:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func selfWorker(t *testing.T, extraEnv ...string) func(context.Context) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return func(ctx context.Context) *exec.Cmd {
		cmd := exec.CommandContext(ctx, exe)
		cmd.Env = append(os.Environ(), append([]string{"REPRO_SHARD_WORKER=1"}, extraEnv...)...)
		return cmd
	}
}

// manifestFromArts flattens in-process artifacts the same way the shard
// workers do, giving the reference manifest a sharded run must match.
func manifestFromArts(label string, arts []RunArtifact) *records.RunManifest {
	m := &records.RunManifest{Label: label}
	for i := range arts {
		m.Runs = append(m.Runs, arts[i].Summary())
	}
	return m
}

// normalizedJSON renders a manifest with the fields that legitimately
// differ between execution strategies — wall-clock times, worker
// accounting and remote provenance — zeroed, so equality is a byte
// comparison of everything that must be deterministic.
func normalizedJSON(t *testing.T, m *records.RunManifest) []byte {
	t.Helper()
	c := *m
	c.Label = ""
	c.Workers = 0
	c.Runs = append([]records.RunSummary(nil), m.Runs...)
	for i := range c.Runs {
		c.Runs[i].WallMS = 0
		c.Runs[i].Host = ""
		c.Runs[i].Attempt = 0
	}
	var buf bytes.Buffer
	if err := c.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestShardedReplicateMatchesInProcess is the executor's core
// guarantee on the cheap path: for fixed seeds the merged sharded
// manifest is byte-identical (wall times aside) to the in-process
// parallel manifest and to the sequential one, for 1, 2 and 4 shards.
func TestShardedReplicateMatchesInProcess(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6}
	mk := func() *CaseStudy {
		cs := smallCase()
		cs.Workload.N = 30
		return cs
	}
	_, seqArts, err := mk().RunReplicatedParallel(context.Background(), ParallelOptions{Workers: 1}, "speed", seeds)
	if err != nil {
		t.Fatal(err)
	}
	seq := normalizedJSON(t, manifestFromArts("replicate/speed", seqArts))
	_, parArts, err := mk().RunReplicatedParallel(context.Background(), ParallelOptions{Workers: 4}, "speed", seeds)
	if err != nil {
		t.Fatal(err)
	}
	if par := normalizedJSON(t, manifestFromArts("replicate/speed", parArts)); !bytes.Equal(seq, par) {
		t.Fatalf("parallel manifest diverges from sequential:\n%s\n%s", seq, par)
	}
	for _, shards := range []int{1, 2, 4} {
		m, err := mk().RunReplicatedSharded(context.Background(), ShardOptions{Shards: shards, Command: selfWorker(t)}, "speed", seeds)
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if got := normalizedJSON(t, m); !bytes.Equal(seq, got) {
			t.Fatalf("%d-shard manifest diverges from sequential:\n%s\n%s", shards, got, seq)
		}
	}
}

// TestShardedRunAllMatchesInProcess proves the four-strategy Table 2
// fan-out — including the rlbase task, whose PPO policy every worker
// process retrains independently from the spec's seeds — is
// bit-identical across sequential, parallel and 1/2/4-shard execution.
func TestShardedRunAllMatchesInProcess(t *testing.T) {
	mk := func() *CaseStudy {
		cs := smallCase()
		cs.Workload.N = 30
		return cs
	}
	_, seqArts, err := mk().RunAllParallel(context.Background(), ParallelOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	seq := normalizedJSON(t, manifestFromArts("modes", seqArts))
	_, parArts, err := mk().RunAllParallel(context.Background(), ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if par := normalizedJSON(t, manifestFromArts("modes", parArts)); !bytes.Equal(seq, par) {
		t.Fatalf("parallel manifest diverges from sequential:\n%s\n%s", seq, par)
	}
	for _, shards := range []int{1, 2, 4} {
		m, err := mk().RunAllSharded(context.Background(), ShardOptions{Shards: shards, Command: selfWorker(t)})
		if err != nil {
			t.Fatalf("%d shards: %v", shards, err)
		}
		if m.Label != "modes" || len(m.Runs) != len(Modes) {
			t.Fatalf("%d shards: manifest %q with %d rows", shards, m.Label, len(m.Runs))
		}
		if got := normalizedJSON(t, m); !bytes.Equal(seq, got) {
			t.Fatalf("%d-shard manifest diverges from sequential (cross-process rlbase training not deterministic?):\n%s\n%s", shards, got, seq)
		}
	}
}

// TestShardedSweepMatchesInProcess covers the sweep mutate path: the
// swept parameter must survive the spec round-trip into each worker.
func TestShardedSweepMatchesInProcess(t *testing.T) {
	phis := []float64{0.9, 0.95, 1.0}
	cs := smallCase()
	cs.Workload.N = 30
	_, arts, err := cs.PhiSweepParallel(context.Background(), ParallelOptions{Workers: 3}, "speed", phis)
	if err != nil {
		t.Fatal(err)
	}
	want := normalizedJSON(t, manifestFromArts("phi-sweep/speed", arts))
	cs2 := smallCase()
	cs2.Workload.N = 30
	m, err := cs2.RunMatrixSharded(context.Background(), ShardOptions{Shards: 2, Command: selfWorker(t)},
		TaskMatrix{Kind: "phi-sweep", Mode: "speed", Values: phis})
	if err != nil {
		t.Fatal(err)
	}
	if got := normalizedJSON(t, m); !bytes.Equal(want, got) {
		t.Fatalf("sharded sweep diverges:\n%s\n%s", got, want)
	}
}

// TestShardedWorkerCrashIsRetried injects the env-var-triggered
// self-kill: one worker dies after streaming a single result, the
// coordinator requeues the unfinished remainder on a fresh process, and
// the merged manifest ends up with every task exactly once.
func TestShardedWorkerCrashIsRetried(t *testing.T) {
	flag := filepath.Join(t.TempDir(), "crash-once")
	seeds := []int64{1, 2, 3, 4, 5, 6}
	cs := smallCase()
	cs.Workload.N = 30
	var mu sync.Mutex
	retries := 0
	opt := ShardOptions{
		ExecOptions: ExecOptions{Retries: 2},
		Shards:      2,
		Command:     selfWorker(t, "EXPERIMENTS_SHARD_CRASH_ONCE="+flag),
		OnEvent: func(p shard.Progress) {
			mu.Lock()
			if p.Event == "retry" {
				retries++
			}
			mu.Unlock()
		},
	}
	m, err := cs.RunReplicatedSharded(context.Background(), opt, "speed", seeds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(flag); err != nil {
		t.Fatalf("crash flag never created — the fault was not injected: %v", err)
	}
	if retries != 1 {
		t.Fatalf("%d retries observed, want exactly 1", retries)
	}
	if len(m.Runs) != len(seeds) {
		t.Fatalf("%d manifest rows, want %d", len(m.Runs), len(seeds))
	}
	for i, r := range m.Runs {
		want := fmt.Sprintf("replicate/speed/seed%d", seeds[i])
		if r.ID != want {
			t.Fatalf("row %d = %q, want %q: duplicate or misordered artifact after retry", i, r.ID, want)
		}
	}
	// The crashed-and-retried manifest must still equal the in-process
	// run: fault recovery may not change results.
	cs2 := smallCase()
	cs2.Workload.N = 30
	_, arts, err := cs2.RunReplicatedParallel(context.Background(), ParallelOptions{Workers: 2}, "speed", seeds)
	if err != nil {
		t.Fatal(err)
	}
	if want := normalizedJSON(t, manifestFromArts("", arts)); !bytes.Equal(want, normalizedJSON(t, m)) {
		t.Fatal("manifest after crash+retry diverges from in-process run")
	}
}

// TestShardedWorkerCrashExhaustsRetries: when every spawned worker
// dies, the bounded retry budget runs out and the root cause — a
// mid-shard crash — surfaces in the error.
func TestShardedWorkerCrashExhaustsRetries(t *testing.T) {
	cs := smallCase()
	cs.Workload.N = 30
	opt := ShardOptions{
		ExecOptions: ExecOptions{Retries: 1},
		Shards:      2,
		Command:     selfWorker(t, "EXPERIMENTS_SHARD_CRASH_ALWAYS=1"),
	}
	_, err := cs.RunReplicatedSharded(context.Background(), opt, "speed", []int64{1, 2, 3, 4, 5, 6})
	if err == nil {
		t.Fatal("run with permanently crashing workers succeeded")
	}
	msg := err.Error()
	if !strings.Contains(msg, "died mid-shard") || !strings.Contains(msg, "attempt") {
		t.Fatalf("err = %v, want the crash root cause and attempt count", err)
	}
}

// TestShardedRejectsBadMatrix: planning errors surface before any
// worker process is spawned.
func TestShardedRejectsBadMatrix(t *testing.T) {
	cs := smallCase()
	spawned := false
	opt := ShardOptions{Command: func(ctx context.Context) *exec.Cmd {
		spawned = true
		return exec.CommandContext(ctx, os.Args[0])
	}}
	if _, err := cs.RunReplicatedSharded(context.Background(), opt, "warp", []int64{1}); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if _, err := cs.RunReplicatedSharded(context.Background(), opt, "speed", nil); err == nil {
		t.Fatal("empty seed list accepted")
	}
	// Duplicate seeds produce duplicate task IDs, which the merge would
	// only reject after all the compute is spent — they must fail here.
	if _, err := cs.RunReplicatedSharded(context.Background(), opt, "speed", []int64{1, 1}); err == nil || !strings.Contains(err.Error(), "twice") {
		t.Fatalf("duplicate seeds: err = %v, want pre-spawn rejection", err)
	}
	// An injected policy never reaches worker processes; rlbase matrices
	// must be rejected rather than silently retrained.
	injected := smallCase()
	injected.UseTrainedPolicy(rl.NewGaussianPolicy(rand.New(rand.NewSource(1)), 4, 2, 8))
	if _, err := injected.RunAllSharded(context.Background(), opt); err == nil || !strings.Contains(err.Error(), "UseTrainedPolicy") {
		t.Fatalf("injected policy: err = %v, want rejection naming UseTrainedPolicy", err)
	}
	injected.Workload.N = 30
	realOpt := ShardOptions{Shards: 2, Command: selfWorker(t)}
	if _, err := injected.RunReplicatedSharded(context.Background(), realOpt, "speed", []int64{1, 2}); err != nil {
		t.Fatalf("injected policy must not block rlbase-free matrices: %v", err)
	}
	if spawned {
		t.Fatal("worker spawned for an invalid matrix")
	}
}
