package experiments

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/records"
)

// writeTrace generates a small synthetic workload and commits it to a
// temp CSV, returning the path and the jobs it holds. Package tests run
// with the package directory as cwd, so the scenario's default
// repo-root-relative trace path does not resolve here — every test
// points TracePath at its own file.
func writeTrace(t *testing.T, n int) (string, []*job.QJob) {
	t.Helper()
	cfg := job.DefaultSyntheticConfig()
	cfg.N = n
	cfg.Seed = 42
	jobs, err := job.Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := job.WriteCSV(f, jobs); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, jobs
}

func TestTraceReplayScenarioRegistered(t *testing.T) {
	if !ScenarioRegistered("trace-replay") {
		t.Fatal("trace-replay scenario not registered")
	}
	cs, err := NewScenario("trace-replay")
	if err != nil {
		t.Fatal(err)
	}
	if cs.TracePath != "specs/trace-smoke.csv" {
		t.Fatalf("default trace path = %q", cs.TracePath)
	}
}

// TestTraceReplayJobs checks the replay path end to end: the loaded
// workload is exactly the trace (byte-for-byte job identity), the
// synthetic generator's knobs are inert, and the Eq. 1 constraint still
// gates what a trace may contain.
func TestTraceReplayJobs(t *testing.T) {
	path, want := writeTrace(t, 12)
	cs := Default()
	cs.TracePath = path

	jobs, err := cs.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != len(want) {
		t.Fatalf("replayed %d jobs, trace holds %d", len(jobs), len(want))
	}
	for i := range jobs {
		if jobs[i].ID != want[i].ID || jobs[i].NumQubits != want[i].NumQubits ||
			jobs[i].ArrivalTime != want[i].ArrivalTime {
			t.Fatalf("job %d differs from trace: %+v vs %+v", i, jobs[i], want[i])
		}
	}

	// The synthetic knobs must be dead: mutating the workload seed and
	// size cannot change what a trace replays.
	cs.Workload.Seed = 999
	cs.Workload.N = 3
	again, err := cs.Jobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(want) {
		t.Fatalf("workload knobs leaked into trace replay: %d jobs", len(again))
	}

	// A trace that violates Eq. 1 for the configured fleet is rejected,
	// same as a synthetic workload would be.
	bad := filepath.Join(t.TempDir(), "bad.csv")
	err = os.WriteFile(bad, []byte(
		"job_id,num_qubits,depth,num_shots,arrival_time,two_qubit_gates\n"+
			"huge,100000,5,1024,0,50\n"), 0o644)
	if err != nil {
		t.Fatal(err)
	}
	cs.TracePath = bad
	if _, err := cs.Jobs(); err == nil {
		t.Fatal("oversized trace job passed the distributed constraint")
	}

	cs.TracePath = filepath.Join(t.TempDir(), "missing.csv")
	if _, err := cs.Jobs(); err == nil {
		t.Fatal("missing trace file did not error")
	}
}

// TestTraceReplayExecutorEquivalence runs a trace spec on the
// Sequential and Parallel executors and requires identical manifests —
// the determinism gate CI runs against the committed smoke trace.
func TestTraceReplayExecutorEquivalence(t *testing.T) {
	path, want := writeTrace(t, 12)
	spec := Spec{
		Scenario:  "trace-replay",
		TracePath: path,
		Matrices:  []TaskMatrix{{Kind: "modes", Modes: []string{"speed", "fair"}}},
	}
	ctx := context.Background()
	seq, err := Run(ctx, spec, Sequential{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(ctx, spec, Parallel{Options: ExecOptions{Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if diff := records.DiffManifests(seq, par); !diff.Empty() {
		var sb strings.Builder
		if err := diff.Write(&sb); err != nil {
			t.Fatal(err)
		}
		t.Fatalf("sequential vs parallel trace replays differ:\n%s", sb.String())
	}
	for i := range seq.Runs {
		r := &seq.Runs[i]
		if r.TracePath != path {
			t.Fatalf("row %q trace_path = %q, want %q", r.ID, r.TracePath, path)
		}
		if r.Jobs != len(want) {
			t.Fatalf("row %q reports %d jobs, trace holds %d", r.ID, r.Jobs, len(want))
		}
	}
}

// TestSpecTraceJobsConflict pins the validation rule: a trace fixes its
// own job count, so a jobs override alongside trace_path is an error.
func TestSpecTraceJobsConflict(t *testing.T) {
	spec := Spec{
		Scenario:  "trace-replay",
		TracePath: "somewhere.csv",
		Jobs:      10,
		Matrices:  []TaskMatrix{{Kind: "modes", Modes: []string{"speed"}}},
	}
	if err := spec.Validate(); err == nil {
		t.Fatal("trace_path + jobs override validated")
	}
}

// TestShardSpecCarriesTrace pins the transport invariant: the trace
// path rides through the ShardSpec round trip, so worker processes
// replay the identical workload.
func TestShardSpecCarriesTrace(t *testing.T) {
	cs := Default()
	cs.TracePath = "specs/trace-smoke.csv"
	rebuilt := cs.shardSpec(TaskMatrix{Kind: "modes"}, 1).caseStudy()
	if rebuilt.TracePath != cs.TracePath {
		t.Fatalf("trace path lost in shard round trip: %q vs %q",
			rebuilt.TracePath, cs.TracePath)
	}
}
