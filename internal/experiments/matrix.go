package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/records"
)

// TaskMatrix declaratively describes the task set of one orchestrated
// run. It is the single enumeration source of truth shared by the
// in-process parallel entry points and the multi-process shard
// executor: both expand the same matrix into the same spec list in the
// same order, which is what lets a shard coordinator ship bare task
// indices to worker processes and still merge their manifests back
// into the exact sequential row order. The type is JSON-portable so it
// travels inside a ShardSpec.
type TaskMatrix struct {
	// Kind selects the expansion: "modes" (one task per strategy,
	// Table 2 / Fig. 6), "phi-sweep" / "lambda-sweep" (one task per
	// Values entry running Mode), "replicate" (one task per Seeds entry
	// running Mode), or "rl-deploy" (the sampled and deterministic
	// rlbase deployments).
	Kind string `json:"kind"`
	// Modes restricts the "modes" expansion; empty means all four, in
	// the paper's Table 2 order.
	Modes []string `json:"modes,omitempty"`
	// Mode is the strategy for sweep and replicate kinds.
	Mode string `json:"mode,omitempty"`
	// Values are the swept parameter values (sweep kinds only).
	Values []float64 `json:"values,omitempty"`
	// Seeds are the workload seeds (replicate kind only).
	Seeds []int64 `json:"seeds,omitempty"`
	// ReplicationSeeds fans every task of the matrix out across these
	// workload seeds: each base task becomes one replica per seed, ID
	// suffixed "@seed<k>" (records.ReplicaID), run with the workload
	// seed overridden. Replicas expand task-major (all seeds of task 0,
	// then task 1, …), and the field travels inside a ShardSpec, so
	// every executor — including worker OS processes — rebuilds the
	// identical fan-out. Usually lowered from the spec-level
	// Replications/ReplicationSeeds by Run rather than set directly.
	// Invalid on "replicate" matrices, which already enumerate seeds.
	ReplicationSeeds []int64 `json:"replication_seeds,omitempty"`
}

// Label names a manifest produced from this matrix, e.g. "modes" or
// "phi-sweep/speed".
func (m TaskMatrix) Label() string {
	switch m.Kind {
	case "modes", "rl-deploy":
		return m.Kind
	default:
		return m.Kind + "/" + m.Mode
	}
}

// modes returns every strategy the matrix will run, for the upfront
// rlbase training check.
func (m TaskMatrix) modes() []string {
	switch m.Kind {
	case "modes":
		if len(m.Modes) == 0 {
			return Modes
		}
		return m.Modes
	case "rl-deploy":
		return []string{"rlbase"}
	default:
		return []string{m.Mode}
	}
}

// checkMode rejects strategies RunMode would reject — any name without
// a registered policy factory — so a malformed matrix fails during
// planning, before any worker process is spawned, rather than deep
// inside a shard.
func checkMode(mode string) error {
	if !policy.Registered(mode) {
		return fmt.Errorf("experiments: unknown mode %q (registered policies: %v)", mode, policy.Names())
	}
	return nil
}

// specs expands the matrix into the ordered task list — the base
// enumeration fanned out across ReplicationSeeds when set. keepRun
// retains each task's full ModeRun on its artifact (records, per-job
// fidelities); leave it false when only Results is consumed so a
// 100-seed replication does not pin 100 record sets in memory.
func (m TaskMatrix) specs(keepRun bool) ([]runSpec, error) {
	base, err := m.baseSpecs(keepRun)
	if err != nil {
		return nil, err
	}
	if len(m.ReplicationSeeds) == 0 {
		return base, nil
	}
	if m.Kind == "replicate" {
		return nil, fmt.Errorf("experiments: replication seeds on a %q matrix: it already enumerates workload seeds (use one or the other)", m.Kind)
	}
	out := make([]runSpec, 0, len(base)*len(m.ReplicationSeeds))
	for _, b := range base {
		for _, seed := range m.ReplicationSeeds {
			r := b
			r.id = records.ReplicaID(b.id, seed)
			inner, s := b.mutate, seed
			r.mutate = func(snap *CaseStudy) {
				if inner != nil {
					inner(snap)
				}
				snap.Workload.Seed = s
			}
			out = append(out, r)
		}
	}
	return out, nil
}

// baseSpecs expands the matrix's own enumeration, before any
// replication fan-out.
func (m TaskMatrix) baseSpecs(keepRun bool) ([]runSpec, error) {
	switch m.Kind {
	case "modes":
		modes := m.modes()
		specs := make([]runSpec, len(modes))
		for i, mode := range modes {
			if err := checkMode(mode); err != nil {
				return nil, err
			}
			specs[i] = runSpec{id: "mode/" + mode, kind: "mode", mode: mode, keepRun: keepRun}
		}
		return specs, nil
	case "phi-sweep", "lambda-sweep":
		if err := checkMode(m.Mode); err != nil {
			return nil, err
		}
		if len(m.Values) == 0 {
			return nil, fmt.Errorf("experiments: empty sweep")
		}
		set := func(c *core.Config, v float64) { c.Phi = v }
		if m.Kind == "lambda-sweep" {
			set = func(c *core.Config, v float64) { c.Lambda = v }
		}
		specs := make([]runSpec, len(m.Values))
		for i, v := range m.Values {
			specs[i] = runSpec{
				id: fmt.Sprintf("%s/%s/%g", m.Kind, m.Mode, v), kind: m.Kind,
				mode: m.Mode, param: v, keepRun: keepRun,
				mutate: func(snap *CaseStudy) { set(&snap.Core, v) },
			}
		}
		return specs, nil
	case "replicate":
		if err := checkMode(m.Mode); err != nil {
			return nil, err
		}
		if len(m.Seeds) == 0 {
			return nil, fmt.Errorf("experiments: no seeds")
		}
		specs := make([]runSpec, len(m.Seeds))
		for i, s := range m.Seeds {
			specs[i] = runSpec{
				id: fmt.Sprintf("replicate/%s/seed%d", m.Mode, s), kind: "replicate",
				mode: m.Mode, keepRun: keepRun,
				mutate: func(snap *CaseStudy) { snap.Workload.Seed = s },
			}
		}
		return specs, nil
	case "rl-deploy":
		return []runSpec{
			{id: "rl-deploy/sampled", kind: "rl-deploy", mode: "rlbase", keepRun: keepRun,
				mutate: func(snap *CaseStudy) { snap.RLDeterministic = false }},
			{id: "rl-deploy/deterministic", kind: "rl-deploy", mode: "rlbase", keepRun: keepRun,
				mutate: func(snap *CaseStudy) { snap.RLDeterministic = true }},
		}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown task-matrix kind %q", m.Kind)
	}
}

// TaskLabels returns the matrix's task IDs in execution order — the
// descriptor list a shard coordinator partitions.
func (m TaskMatrix) TaskLabels() ([]string, error) {
	specs, err := m.specs(false)
	if err != nil {
		return nil, err
	}
	labels := make([]string, len(specs))
	for i, s := range specs {
		labels[i] = s.id
	}
	return labels, nil
}

// runMatrix expands and executes a matrix through the in-process worker
// pool, training the rlbase policy up front when any task needs it.
func (cs *CaseStudy) runMatrix(ctx context.Context, opt ParallelOptions, m TaskMatrix, keepRun bool) ([]RunArtifact, error) {
	specs, err := m.specs(keepRun)
	if err != nil {
		return nil, err
	}
	if err := cs.ensureTrained(m.modes()...); err != nil {
		return nil, fmt.Errorf("experiments: training rlbase: %w", err)
	}
	return cs.runSpecs(ctx, opt, specs)
}
