package experiments

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"repro/internal/experiments/runner"
	"repro/internal/records"
)

// TestParallelRunAllMatchesSequential is the engine's core guarantee:
// fanning the four strategies out across workers yields bit-identical
// results to the sequential path, per-job fidelities included.
func TestParallelRunAllMatchesSequential(t *testing.T) {
	seqCS := smallCase()
	seq, err := seqCS.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	parCS := smallCase()
	par, arts, err := parCS.RunAllParallel(context.Background(), ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != len(Modes) {
		t.Fatalf("%d artifacts, want %d", len(arts), len(Modes))
	}
	for _, mode := range Modes {
		s, p := seq[mode], par[mode]
		if s == nil || p == nil {
			t.Fatalf("%s: missing run (seq %v, par %v)", mode, s != nil, p != nil)
		}
		if s.Results != p.Results {
			t.Fatalf("%s: results diverge:\nseq %+v\npar %+v", mode, s.Results, p.Results)
		}
		if !reflect.DeepEqual(s.Fidelities, p.Fidelities) {
			t.Fatalf("%s: per-job fidelities diverge", mode)
		}
	}
}

func TestParallelSweepMatchesSequential(t *testing.T) {
	phis := []float64{0.9, 0.95, 1.0}
	seq, err := smallCase().PhiSweep("speed", phis)
	if err != nil {
		t.Fatal(err)
	}
	par, arts, err := smallCase().PhiSweepParallel(context.Background(), ParallelOptions{Workers: 3}, "speed", phis)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("sweep diverges:\nseq %+v\npar %+v", seq, par)
	}
	if len(arts) != len(phis) {
		t.Fatalf("%d artifacts, want %d", len(arts), len(phis))
	}
	for _, a := range arts {
		if a.Kind != "phi-sweep" || a.Core.Phi != a.Param {
			t.Fatalf("artifact %q: kind %q, phi %g, param %g", a.ID, a.Kind, a.Core.Phi, a.Param)
		}
		if a.Run != nil {
			t.Fatalf("artifact %q retains its full run; sweeps should carry Results only", a.ID)
		}
	}
}

func TestParallelReplicatedMatchesSequential(t *testing.T) {
	seeds := []int64{1, 2, 3, 4}
	cs := smallCase()
	cs.Workload.N = 30
	seq, err := cs.RunReplicated("fair", seeds)
	if err != nil {
		t.Fatal(err)
	}
	cs2 := smallCase()
	cs2.Workload.N = 30
	par, arts, err := cs2.RunReplicatedParallel(context.Background(), ParallelOptions{Workers: 4}, "fair", seeds)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("replication diverges:\nseq %+v\npar %+v", seq, par)
	}
	if par.TsimStat.N != len(seeds) || par.TsimStat.CI95 <= 0 {
		t.Fatalf("aggregate incomplete: %+v", par.TsimStat)
	}
	for i, a := range arts {
		if a.Workload.Seed != seeds[i] {
			t.Fatalf("artifact %d ran seed %d, want %d", i, a.Workload.Seed, seeds[i])
		}
		if a.Run != nil {
			t.Fatalf("artifact %d retains its full run; replicates should carry Results only", i)
		}
	}
}

// TestParallelDoesNotMutateCaseStudy verifies tasks run on private
// snapshots: the shared case study's config must not move while a
// parallel sweep is in flight.
func TestParallelDoesNotMutateCaseStudy(t *testing.T) {
	cs := smallCase()
	cs.Workload.N = 30
	savedCore := cs.Core
	savedWorkload := cs.Workload
	if _, _, err := cs.PhiSweepParallel(context.Background(), ParallelOptions{Workers: 2}, "speed", []float64{0.9, 0.95}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := cs.RunReplicatedParallel(context.Background(), ParallelOptions{Workers: 2}, "speed", []int64{5, 6}); err != nil {
		t.Fatal(err)
	}
	if cs.Core != savedCore || cs.Workload != savedWorkload {
		t.Fatalf("case study mutated by parallel runs: core %+v, workload %+v", cs.Core, cs.Workload)
	}
}

// TestParallelErrorPropagates drives the error path end to end: an
// unplaceable workload must fail the pool run and surface the task
// label, not hang or return partial results silently.
func TestParallelErrorPropagates(t *testing.T) {
	cs := smallCase()
	cs.Workload.N = 10
	// Jobs larger than the whole cloud can never be placed; every task
	// fails fast inside workload validation.
	cs.Workload.MinQubits = 10000
	cs.Workload.MaxQubits = 10001
	_, _, err := cs.RunAllParallel(context.Background(), ParallelOptions{Workers: 4})
	if err == nil {
		t.Fatal("impossible workload accepted")
	}
}

func TestParallelProgressAndArtifacts(t *testing.T) {
	var mu sync.Mutex
	var events []runner.Progress
	cs := smallCase()
	cs.Workload.N = 30
	opt := ParallelOptions{
		Workers: 2,
		OnProgress: func(p runner.Progress) {
			mu.Lock()
			events = append(events, p)
			mu.Unlock()
		},
	}
	_, arts, err := cs.RunReplicatedParallel(context.Background(), opt, "speed", []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 {
		t.Fatalf("%d progress events, want 3", len(events))
	}
	m := records.RunManifest{Label: "replicate/speed", Workers: 2}
	for i := range arts {
		m.Runs = append(m.Runs, arts[i].Summary())
	}
	if len(m.Runs) != 3 {
		t.Fatalf("manifest = %+v", m)
	}
	for i, r := range m.Runs {
		if r.Kind != "replicate" || r.Mode != "speed" || r.Jobs != 30 {
			t.Fatalf("manifest run %d = %+v", i, r)
		}
		if r.WallMS <= 0 {
			t.Fatalf("manifest run %d missing wall time", i)
		}
		if r.WorkloadSeed != int64(i+1) {
			t.Fatalf("manifest run %d seed %d", i, r.WorkloadSeed)
		}
	}
}
