package experiments

import (
	"context"
	"errors"
	"net"
	"time"

	"repro/internal/experiments/shard"
	"repro/internal/records"
	"repro/internal/retry"
)

// RemoteOptions configures the Remote executor — the hosts-level
// backend that fans a run out across long-lived worker daemons over
// TCP. The knobs shared with every executor (Workers, Retries,
// OnProgress) live in the embedded ExecOptions; Workers sizes each
// daemon's per-order pool exactly as it sizes a subprocess worker's.
type RemoteOptions struct {
	ExecOptions
	// Hosts lists worker daemon addresses as host:port (usually
	// `experiments -serve` on each machine). Required.
	Hosts []string
	// Shards is the concurrent order count; <= 0 means one shard per
	// host. More shards than hosts multiplexes orders onto daemons;
	// fewer leaves hosts idle until a crash fails work over to them.
	Shards int
	// DialTimeout bounds connect+handshake per host; 0 means
	// shard.DefaultDialTimeout.
	DialTimeout time.Duration
	// HeartbeatTimeout is the per-receive silence budget before a
	// daemon counts as wedged; 0 means shard.DefaultHeartbeatTimeout.
	HeartbeatTimeout time.Duration
	// DialAttempts is the total session-establishment tries per shard
	// attempt under the shared retry policy (each try already sweeps
	// every host). Values <= 1 keep the legacy fail-fast behavior in
	// which an all-hosts-down dial is terminal.
	DialAttempts int
	// OnEvent, if set, receives raw coordinator lifecycle events
	// (spawn/result/retry/done) beyond the per-task OnProgress stream.
	OnEvent func(shard.Progress)
}

// Remote executes a task matrix across worker daemons on a host fleet,
// implementing Executor on top of the same coordinator machinery as
// Sharded — only the transport differs, so crash requeue, bounded
// retries and the merge integrity check carry over unchanged. A daemon
// that dies mid-order has its unfinished tasks requeued onto a
// surviving host, and each manifest row records which host produced it
// (records.RunSummary.Host/Attempt).
//
// For fixed seeds the manifest is bit-identical to every other
// executor's (wall time, worker accounting and provenance aside):
// daemons rebuild tasks from the same serialized ShardSpec seeds as
// subprocess workers.
type Remote struct {
	Options RemoteOptions
}

// Name implements Executor.
func (Remote) Name() string { return "remote" }

// Execute implements Executor.
func (e Remote) Execute(ctx context.Context, cs *CaseStudy, m TaskMatrix) (*records.RunManifest, error) {
	return cs.RunMatrixRemote(ctx, e.Options, m)
}

// RunMatrixRemote executes an arbitrary task matrix across the
// configured worker daemons and returns the merged manifest in global
// task order, with per-row host provenance. See Remote.
func (cs *CaseStudy) RunMatrixRemote(ctx context.Context, opt RemoteOptions, m TaskMatrix) (*records.RunManifest, error) {
	if len(opt.Hosts) == 0 {
		return nil, errors.New("experiments: remote execution needs at least one worker daemon host")
	}
	spec, labels, err := cs.shardPayload(m, opt.Workers)
	if err != nil {
		return nil, err
	}
	shards := opt.Shards
	if shards <= 0 {
		shards = len(opt.Hosts)
	}
	var transport shard.Transport = &shard.TCPTransport{
		Hosts:            opt.Hosts,
		DialTimeout:      opt.DialTimeout,
		HeartbeatTimeout: opt.HeartbeatTimeout,
	}
	if opt.DialAttempts > 1 {
		transport = &shard.RetryTransport{
			Inner: transport,
			Policy: retry.Policy{
				MaxAttempts: opt.DialAttempts,
				BaseDelay:   200 * time.Millisecond,
				MaxDelay:    2 * time.Second,
				Seed:        1,
			},
		}
	}
	coord := shard.Coordinator{
		Shards:          shards,
		Retries:         opt.Retries,
		Transport:       transport,
		PerShardWorkers: opt.Workers,
		OnProgress:      coordinatorProgress(opt.ExecOptions, opt.OnEvent),
	}
	return coord.Run(ctx, m.Label(), spec, labels)
}

// ServeShardDaemon runs the experiments worker daemon on ln until ctx
// is canceled — the engine behind `experiments -serve <addr>`. It
// serves the same task engine as the -shard-worker subprocess mode
// (shardRunFunc), so a Remote run against daemons and a Sharded run
// against subprocesses produce identical manifest rows. capacity is
// the advertised per-order pool size reported to -doctor probes; logf
// (nil for silent) receives one line per connection event.
func ServeShardDaemon(ctx context.Context, ln net.Listener, capacity int, logf func(format string, args ...any)) error {
	srv := &shard.Server{Run: shardRunFunc, Capacity: capacity, Logf: logf}
	return srv.Serve(ctx, ln)
}
