package experiments

import (
	"bufio"
	"bytes"
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/experiments/shard"
	"repro/internal/records"
)

// startDaemon re-execs the test binary as a worker daemon subprocess
// (see TestMain) and returns its announced address plus the process
// handle, so tests can kill or stop a real daemon the way operators
// would lose one. The daemon is killed at cleanup.
func startDaemon(t *testing.T, extraEnv ...string) (addr string, proc *os.Process) {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), append([]string{"REPRO_SHARD_DAEMON=1"}, extraEnv...)...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	line, err := bufio.NewReader(stdout).ReadString('\n')
	if err != nil {
		t.Fatalf("daemon never announced its address: %v", err)
	}
	return strings.TrimSpace(line), cmd.Process
}

// stripProvenance asserts every row of a remote manifest names one of
// the expected hosts, then clears Host/Attempt in place so the
// manifest can be byte-compared against local runs.
func stripProvenance(t *testing.T, m *records.RunManifest, hosts ...string) {
	t.Helper()
	allowed := make(map[string]bool, len(hosts))
	for _, h := range hosts {
		allowed[h] = true
	}
	for i := range m.Runs {
		if !allowed[m.Runs[i].Host] {
			t.Fatalf("row %s ran on %q, want one of %v", m.Runs[i].ID, m.Runs[i].Host, hosts)
		}
		m.Runs[i].Host = ""
		m.Runs[i].Attempt = 0
	}
}

// TestRemoteSpecMatchesOtherExecutors is the tentpole's acceptance
// gate: the same spec through Remote over two localhost daemons —
// including the rlbase task each daemon retrains from the spec's seeds
// — yields a manifest byte-identical (wall times, worker accounting
// and provenance aside) to the Parallel and Sharded runs.
func TestRemoteSpecMatchesOtherExecutors(t *testing.T) {
	addr1, _ := startDaemon(t)
	addr2, _ := startDaemon(t)
	spec := specForSmallCase(TaskMatrix{Kind: "modes"})

	par, err := Run(context.Background(), spec, Parallel{Options: ExecOptions{Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := Run(context.Background(), spec, Sharded{Options: ShardOptions{Shards: 2, Command: selfWorker(t)}})
	if err != nil {
		t.Fatal(err)
	}
	rem, err := Run(context.Background(), spec, Remote{Options: RemoteOptions{Hosts: []string{addr1, addr2}}})
	if err != nil {
		t.Fatal(err)
	}
	stripProvenance(t, rem, addr1, addr2)

	want := normalizedJSON(t, par)
	if got := normalizedJSON(t, sh); !bytes.Equal(want, got) {
		t.Fatalf("sharded manifest diverges from parallel:\n%s\n%s", got, want)
	}
	if got := normalizedJSON(t, rem); !bytes.Equal(want, got) {
		t.Fatalf("remote manifest diverges from parallel:\n%s\n%s", got, want)
	}
}

// TestRemoteDaemonKillRequeuesToSurvivor arms the crash-once fault in
// one of two real daemon processes: it exits mid-order, and the run
// must finish on the survivor with the failover recorded per row — and
// still match the in-process result.
func TestRemoteDaemonKillRequeuesToSurvivor(t *testing.T) {
	flag := filepath.Join(t.TempDir(), "crash-once")
	crashAddr, _ := startDaemon(t, "EXPERIMENTS_SHARD_CRASH_ONCE="+flag)
	survivorAddr, _ := startDaemon(t)

	seeds := []int64{1, 2, 3, 4, 5, 6}
	cs := smallCase()
	cs.Workload.N = 30
	var mu sync.Mutex
	retries := 0
	opt := RemoteOptions{
		ExecOptions: ExecOptions{Retries: 2},
		Hosts:       []string{crashAddr, survivorAddr},
		OnEvent: func(p shard.Progress) {
			mu.Lock()
			if p.Event == "retry" {
				retries++
			}
			mu.Unlock()
		},
	}
	m, err := cs.RunMatrixRemote(context.Background(), opt,
		TaskMatrix{Kind: "replicate", Mode: "speed", Seeds: seeds})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(flag); err != nil {
		t.Fatalf("crash flag never created — the fault was not injected: %v", err)
	}
	if retries == 0 {
		t.Fatal("daemon kill produced no retry event")
	}
	if len(m.Runs) != len(seeds) {
		t.Fatalf("%d manifest rows, want %d", len(m.Runs), len(seeds))
	}
	requeued := 0
	for i, r := range m.Runs {
		want := fmt.Sprintf("replicate/speed/seed%d", seeds[i])
		if r.ID != want {
			t.Fatalf("row %d = %q, want %q: duplicate or misordered row after failover", i, r.ID, want)
		}
		if r.Attempt > 0 {
			requeued++
			if r.Host != survivorAddr {
				t.Fatalf("requeued row %s ran on %q, want the surviving daemon %q", r.ID, r.Host, survivorAddr)
			}
		}
	}
	if requeued == 0 {
		t.Fatal("no row records a requeued attempt; failover provenance lost")
	}

	cs2 := smallCase()
	cs2.Workload.N = 30
	_, arts, err := cs2.RunReplicatedParallel(context.Background(), ParallelOptions{Workers: 2}, "speed", seeds)
	if err != nil {
		t.Fatal(err)
	}
	if want := normalizedJSON(t, manifestFromArts("", arts)); !bytes.Equal(want, normalizedJSON(t, m)) {
		t.Fatal("manifest after daemon kill diverges from in-process run")
	}
}

// TestRemoteRequiresHosts: remote execution without a fleet is a
// configuration error, caught before any dialing.
func TestRemoteRequiresHosts(t *testing.T) {
	cs := smallCase()
	_, err := cs.RunMatrixRemote(context.Background(), RemoteOptions{}, TaskMatrix{Kind: "modes"})
	if err == nil || !strings.Contains(err.Error(), "at least one worker daemon host") {
		t.Fatalf("err = %v, want missing-hosts rejection", err)
	}
}

// TestRemoteAllHostsDownFailsCleanly: a fleet of dead addresses must
// produce a prompt, named error — never a hang or a retry storm.
func TestRemoteAllHostsDownFailsCleanly(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := ln.Addr().String()
	ln.Close()

	cs := smallCase()
	opt := RemoteOptions{
		Hosts:       []string{dead},
		DialTimeout: time.Second,
	}
	start := time.Now()
	_, err = cs.RunMatrixRemote(context.Background(), opt, TaskMatrix{Kind: "replicate", Mode: "speed", Seeds: []int64{1, 2}})
	if err == nil || !strings.Contains(err.Error(), "no worker daemon reachable") {
		t.Fatalf("err = %v, want no-daemon-reachable error", err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("dead fleet took %v to fail; must not hang", elapsed)
	}
}

// TestRemoteStoppedDaemonDetected SIGSTOPs a real daemon: the kernel
// still accepts TCP connections for it, so only the handshake deadline
// can tell an operator the process is wedged. The run must fail within
// the dial budget, naming the host.
func TestRemoteStoppedDaemonDetected(t *testing.T) {
	addr, proc := startDaemon(t)
	if err := proc.Signal(syscall.SIGSTOP); err != nil {
		t.Fatal(err)
	}
	cs := smallCase()
	opt := RemoteOptions{
		Hosts:       []string{addr},
		DialTimeout: 500 * time.Millisecond,
	}
	start := time.Now()
	_, err := cs.RunMatrixRemote(context.Background(), opt, TaskMatrix{Kind: "replicate", Mode: "speed", Seeds: []int64{1}})
	if err == nil {
		t.Fatal("run against a SIGSTOP'd daemon succeeded")
	}
	if !strings.Contains(err.Error(), "no worker daemon reachable") || !strings.Contains(err.Error(), addr) {
		t.Fatalf("err = %v, want the wedged host named as unreachable", err)
	}
	if elapsed := time.Since(start); elapsed > 15*time.Second {
		t.Fatalf("wedged daemon took %v to detect", elapsed)
	}
}

// TestSpecHostsValidation: the hosts block is validated with the rest
// of the spec, and a valid list survives the JSON round trip.
func TestSpecHostsValidation(t *testing.T) {
	bad := Spec{Matrices: []TaskMatrix{{Kind: "modes"}}, Hosts: []string{"nope"}}
	if err := bad.Validate(); err == nil || !strings.Contains(err.Error(), "not host:port") {
		t.Fatalf("err = %v, want host:port rejection", err)
	}
	good := Spec{Matrices: []TaskMatrix{{Kind: "modes"}}, Hosts: []string{"10.0.0.1:7070", "worker-2:7070"}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid hosts rejected: %v", err)
	}
	var buf bytes.Buffer
	if err := good.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Hosts) != 2 || loaded.Hosts[0] != "10.0.0.1:7070" {
		t.Fatalf("hosts lost in round trip: %v", loaded.Hosts)
	}
}
