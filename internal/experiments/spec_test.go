package experiments

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// -update regenerates the golden spec fixture:
//
//	go test ./internal/experiments -run SpecGolden -update
var update = flag.Bool("update", false, "rewrite golden fixtures")

// goldenSpec exercises every Spec field: overrides behind pointers
// (seed 0 must survive), a PPO override, spec-level replication (which
// the replicate matrix is exempt from — it enumerates its own seeds),
// and two matrices.
func goldenSpec() *Spec {
	seed := int64(0)
	fleetSeed := int64(2025)
	ppo := Default().PPO
	ppo.NSteps = 512
	ppo.NEpochs = 3
	return &Spec{
		Name:       "golden",
		Scenario:   "paper",
		Jobs:       30,
		Seed:       &seed,
		FleetSeed:  &fleetSeed,
		TrainSteps: 2048,
		PPO:        &ppo,
		Matrices: []TaskMatrix{
			{Kind: "modes", Modes: []string{"speed", "fair"}},
			{Kind: "replicate", Mode: "fidelity", Seeds: []int64{1, 2, 3}},
		},
		Replications: 2,
	}
}

// TestSpecGoldenRoundTrip pins the spec file format: WriteJSON's bytes
// must match the committed fixture, and LoadSpec must restore the
// exact value and re-emit the same bytes. Spec files are the public
// currency of the experiments CLI, so their encoding must not drift
// silently.
func TestSpecGoldenRoundTrip(t *testing.T) {
	path := filepath.Join("testdata", "spec_golden.json")
	var buf bytes.Buffer
	if err := goldenSpec().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("spec encoding drifted from golden fixture (rerun with -update if intended):\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	loaded, err := LoadSpec(bytes.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(loaded, goldenSpec()) {
		t.Fatalf("loaded spec differs from source:\n%+v\n%+v", loaded, goldenSpec())
	}
	var again bytes.Buffer
	if err := loaded.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again.Bytes(), want) {
		t.Fatal("re-encoding a loaded spec changed its bytes")
	}
}

// TestLoadSpecRejectsUnknownFields: a typo'd key must not silently
// fall back to a default.
func TestLoadSpecRejectsUnknownFields(t *testing.T) {
	_, err := LoadSpec(strings.NewReader(`{"scenario":"paper","matricies":[{"kind":"modes"}]}`))
	if err == nil || !strings.Contains(err.Error(), "matricies") {
		t.Fatalf("err = %v, want unknown-field rejection", err)
	}
}

// TestLoadSpecRejectsTrailingContent: content after the JSON document
// (a duplicated object from a bad paste, merge-conflict leftovers)
// must not be silently ignored — the decoder would otherwise run only
// the first object.
func TestLoadSpecRejectsTrailingContent(t *testing.T) {
	_, err := LoadSpec(strings.NewReader(`{"matrices":[{"kind":"modes"}]}{"jobs":999}`))
	if err == nil || !strings.Contains(err.Error(), "trailing content") {
		t.Fatalf("err = %v, want trailing-content rejection", err)
	}
	// Trailing whitespace and a final newline stay legal.
	if _, err := LoadSpec(strings.NewReader("{\"matrices\":[{\"kind\":\"modes\"}]}\n  \n")); err != nil {
		t.Fatalf("trailing whitespace rejected: %v", err)
	}
}

// TestSpecValidate drives every planning-time rejection: unknown
// scenario, empty matrix list, malformed matrices, bad overrides, and
// task IDs duplicated across matrices.
func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown scenario", Spec{Scenario: "warp", Matrices: []TaskMatrix{{Kind: "modes"}}}, "unknown scenario"},
		{"no matrices", Spec{Scenario: "paper"}, "no task matrices"},
		{"bad matrix kind", Spec{Matrices: []TaskMatrix{{Kind: "warp"}}}, "unknown task-matrix kind"},
		{"bad mode", Spec{Matrices: []TaskMatrix{{Kind: "replicate", Mode: "warp", Seeds: []int64{1}}}}, "unknown mode"},
		{"negative jobs", Spec{Jobs: -1, Matrices: []TaskMatrix{{Kind: "modes"}}}, "jobs"},
		{"negative train", Spec{TrainSteps: -1, Matrices: []TaskMatrix{{Kind: "modes"}}}, "train_steps"},
		{"duplicate across matrices", Spec{Matrices: []TaskMatrix{
			{Kind: "replicate", Mode: "speed", Seeds: []int64{1, 2}},
			{Kind: "replicate", Mode: "speed", Seeds: []int64{2, 3}},
		}}, "twice"},
		{"negative replications", Spec{Replications: -1, Matrices: []TaskMatrix{{Kind: "modes"}}}, "replications"},
		{"replications and seeds", Spec{Replications: 2, ReplicationSeeds: []int64{1}, Matrices: []TaskMatrix{{Kind: "modes"}}}, "pick one"},
		{"replication on replicate matrix", Spec{Matrices: []TaskMatrix{
			{Kind: "replicate", Mode: "speed", Seeds: []int64{1}, ReplicationSeeds: []int64{2}},
		}}, "already enumerates"},
		{"duplicate replication seeds", Spec{ReplicationSeeds: []int64{4, 4}, Matrices: []TaskMatrix{{Kind: "modes"}}}, "twice"},
		{"replicated duplicate across matrices", Spec{Replications: 2, Matrices: []TaskMatrix{
			{Kind: "modes", Modes: []string{"speed"}},
			{Kind: "modes", Modes: []string{"speed"}},
		}}, "twice"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.spec.Validate()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
	good := Spec{Matrices: []TaskMatrix{
		{Kind: "modes"},
		{Kind: "replicate", Mode: "speed", Seeds: []int64{1, 2}},
	}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// TestSpecCaseStudyOverrides: only the set overrides move off the
// scenario's defaults.
func TestSpecCaseStudyOverrides(t *testing.T) {
	seed := int64(0)
	spec := Spec{Scenario: "paper", Jobs: 42, Seed: &seed, TrainSteps: 512}
	cs, err := spec.CaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	def := Default()
	if cs.Workload.N != 42 || cs.Workload.Seed != 0 || cs.TrainSteps != 512 {
		t.Fatalf("overrides not applied: %+v", cs.Workload)
	}
	if cs.FleetSeed != def.FleetSeed || !reflect.DeepEqual(cs.PPO, def.PPO) {
		t.Fatal("unset overrides moved off the scenario defaults")
	}
	// No overrides at all: the empty scenario is "paper" verbatim.
	plain, err := (&Spec{}).CaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	if plain.Workload != def.Workload || plain.Core != def.Core || plain.TrainSteps != def.TrainSteps {
		t.Fatalf("empty spec diverges from Default(): %+v", plain.Workload)
	}
}

// TestScenarioRegistry: built-ins resolve, unknown names fail with the
// list, duplicates are rejected, and runtime registration works.
func TestScenarioRegistry(t *testing.T) {
	for _, name := range []string{"paper", "hetero-fleet", "stress-arrivals"} {
		if !ScenarioRegistered(name) {
			t.Fatalf("%s not registered (have %v)", name, ScenarioNames())
		}
		cs, err := NewScenario(name)
		if err != nil || cs == nil {
			t.Fatalf("NewScenario(%s): %v", name, err)
		}
	}
	if _, err := NewScenario("warp"); err == nil || !strings.Contains(err.Error(), "paper") {
		t.Fatalf("err = %v, want the registered scenarios listed", err)
	}
	if err := RegisterScenario("paper", Default); err == nil || !strings.Contains(err.Error(), "already registered") {
		t.Fatalf("duplicate registration: err = %v", err)
	}
	if err := RegisterScenario("", Default); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := RegisterScenario("nil-ctor", nil); err == nil {
		t.Fatal("nil constructor accepted")
	}
	name := "spec-test-registered"
	if err := RegisterScenario(name, func() *CaseStudy {
		cs := Default()
		cs.Workload.N = 7
		return cs
	}); err != nil {
		t.Fatal(err)
	}
	cs, err := NewScenario(name)
	if err != nil || cs.Workload.N != 7 {
		t.Fatalf("user scenario: %v, %+v", err, cs)
	}
}

// TestBuiltinScenarioVariants: the shipped variants genuinely move the
// axes they claim — fleet preset and arrival pressure — and their
// workloads still satisfy the Eq. 1 constraint against their own
// fleets.
func TestBuiltinScenarioVariants(t *testing.T) {
	hetero := HeteroFleet()
	if hetero.FleetPreset != "hetero" {
		t.Fatalf("hetero-fleet preset = %q", hetero.FleetPreset)
	}
	hetero.Workload.N = 20
	if _, err := hetero.Jobs(); err != nil {
		t.Fatalf("hetero workload violates its own fleet constraint: %v", err)
	}
	stress := StressArrivals()
	if stress.Workload.MeanInterarrival >= Default().Workload.MeanInterarrival {
		t.Fatalf("stress-arrivals interarrival %g not tighter than paper %g",
			stress.Workload.MeanInterarrival, Default().Workload.MeanInterarrival)
	}
}

// TestHeteroFleetScenarioRuns drives a scaled-down hetero-fleet
// simulation end to end through Run: the mixed-capacity preset must
// survive the scenario → spec → executor path, not just construct.
func TestHeteroFleetScenarioRuns(t *testing.T) {
	spec := Spec{
		Scenario: "hetero-fleet",
		Jobs:     20,
		Matrices: []TaskMatrix{{Kind: "modes", Modes: []string{"speed", "fair"}}},
	}
	m, err := Run(context.Background(), spec, Parallel{Options: ExecOptions{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != 2 {
		t.Fatalf("%d rows", len(m.Runs))
	}
	for _, r := range m.Runs {
		if r.Jobs != 20 || r.TsimS <= 0 || r.FidelityMean <= 0 || r.FidelityMean >= 1 {
			t.Fatalf("degenerate hetero row: %+v", r)
		}
	}
}

// ptr64 is a test helper for the pointer-typed spec overrides.
func ptr64(v int64) *int64 { return &v }

// specForSmallCase mirrors smallCase() as a declarative paper-scenario
// spec with 30 jobs, so Run results are comparable against the legacy
// entry points on the same configuration.
func specForSmallCase(matrices ...TaskMatrix) Spec {
	small := smallCase()
	ppo := small.PPO
	return Spec{
		Scenario:   "paper",
		Jobs:       30,
		Seed:       ptr64(small.Workload.Seed),
		TrainSteps: small.TrainSteps,
		PPO:        &ppo,
		Matrices:   matrices,
	}
}

// TestRunSpecMatchesLegacyPaths is the redesign's acceptance gate: for
// fixed seeds, Run with the "paper" scenario produces a manifest
// identical (wall times and worker accounting aside) to the legacy
// RunAllParallel path, across the Sequential, Parallel and Sharded
// executors. Combined with the legacy sharded-vs-parallel equivalence
// suite, this pins all six paths to one result.
func TestRunSpecMatchesLegacyPaths(t *testing.T) {
	legacy := smallCase()
	legacy.Workload.N = 30
	_, arts, err := legacy.RunAllParallel(context.Background(), ParallelOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := normalizedJSON(t, manifestFromArts("modes", arts))

	spec := specForSmallCase(TaskMatrix{Kind: "modes"})
	execs := []Executor{
		Sequential{},
		Parallel{Options: ExecOptions{Workers: 4}},
		Sharded{Options: ShardOptions{Shards: 2, Command: selfWorker(t)}},
	}
	for _, exec := range execs {
		m, err := Run(context.Background(), spec, exec)
		if err != nil {
			t.Fatalf("%s: %v", exec.Name(), err)
		}
		if got := normalizedJSON(t, m); !bytes.Equal(want, got) {
			t.Fatalf("%s executor manifest diverges from legacy RunAllParallel:\n%s\n%s", exec.Name(), got, want)
		}
	}
}

// TestRunMultiMatrixSpec: matrices execute in order into one combined
// manifest, matching their individually-run concatenation row for row.
func TestRunMultiMatrixSpec(t *testing.T) {
	seeds := []int64{1, 2, 3}
	phis := []float64{0.9, 1.0}
	spec := specForSmallCase(
		TaskMatrix{Kind: "replicate", Mode: "speed", Seeds: seeds},
		TaskMatrix{Kind: "phi-sweep", Mode: "fair", Values: phis},
	)
	m, err := Run(context.Background(), spec, Parallel{Options: ExecOptions{Workers: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Label != "paper:replicate/speed+phi-sweep/fair" {
		t.Fatalf("label = %q", m.Label)
	}
	if len(m.Runs) != len(seeds)+len(phis) {
		t.Fatalf("%d rows, want %d", len(m.Runs), len(seeds)+len(phis))
	}
	legacy := smallCase()
	legacy.Workload.N = 30
	_, repArts, err := legacy.RunReplicatedParallel(context.Background(), ParallelOptions{Workers: 1}, "speed", seeds)
	if err != nil {
		t.Fatal(err)
	}
	_, phiArts, err := legacy.PhiSweepParallel(context.Background(), ParallelOptions{Workers: 1}, "fair", phis)
	if err != nil {
		t.Fatal(err)
	}
	want := normalizedJSON(t, manifestFromArts("", append(repArts, phiArts...)))
	if got := normalizedJSON(t, m); !bytes.Equal(want, got) {
		t.Fatalf("multi-matrix spec diverges from per-matrix legacy runs:\n%s\n%s", got, want)
	}
}

// TestRunNilExecutorIsSequential: Run's nil executor default.
func TestRunNilExecutorIsSequential(t *testing.T) {
	spec := specForSmallCase(TaskMatrix{Kind: "replicate", Mode: "speed", Seeds: []int64{1, 2}})
	m, err := Run(context.Background(), spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Runs) != 2 || m.Workers != 1 {
		t.Fatalf("manifest = %d rows, workers %d", len(m.Runs), m.Workers)
	}
}

// TestRunInvalidSpec: Run validates before executing anything.
func TestRunInvalidSpec(t *testing.T) {
	if _, err := Run(context.Background(), Spec{Scenario: "warp", Matrices: []TaskMatrix{{Kind: "modes"}}}, nil); err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if _, err := Run(context.Background(), Spec{}, nil); err == nil {
		t.Fatal("empty spec accepted")
	}
}
