package experiments

import (
	"context"
	"runtime"

	"repro/internal/records"
)

// Executor is the pluggable execution backend behind Run: it receives
// a fully configured case study plus one task matrix and returns the
// manifest rows in global task order. All four built-ins — Sequential,
// Parallel, Sharded, Remote — are bit-identical for fixed seeds (wall
// times and provenance aside), because they expand the same matrix
// through the same enumeration and every task runs on a private
// snapshot seeded only from the case study's configuration. The
// out-of-process backends differ only in the transport they hand the
// shard coordinator: Sharded spawns local subprocesses, Remote dials
// worker daemons across a host fleet.
type Executor interface {
	// Name identifies the backend in logs and errors.
	Name() string
	// Execute runs every task of the matrix and returns the manifest.
	Execute(ctx context.Context, cs *CaseStudy, m TaskMatrix) (*records.RunManifest, error)
}

// Sequential executes the matrix one task at a time in-process — the
// reference backend the others are measured against.
type Sequential struct {
	// Options' Workers is ignored (forced to 1); OnProgress applies.
	Options ExecOptions
}

// Name implements Executor.
func (Sequential) Name() string { return "sequential" }

// Execute implements Executor.
func (e Sequential) Execute(ctx context.Context, cs *CaseStudy, m TaskMatrix) (*records.RunManifest, error) {
	opt := e.Options
	opt.Workers = 1
	return runMatrixManifest(ctx, cs, m, opt)
}

// Parallel executes the matrix across an in-process worker pool.
type Parallel struct {
	Options ExecOptions
}

// Name implements Executor.
func (Parallel) Name() string { return "parallel" }

// Execute implements Executor.
func (e Parallel) Execute(ctx context.Context, cs *CaseStudy, m TaskMatrix) (*records.RunManifest, error) {
	return runMatrixManifest(ctx, cs, m, e.Options)
}

// runMatrixManifest is the shared in-process backend: expand, run
// through the pool, flatten artifacts to manifest rows.
func runMatrixManifest(ctx context.Context, cs *CaseStudy, m TaskMatrix, opt ExecOptions) (*records.RunManifest, error) {
	arts, err := cs.runMatrix(ctx, opt, m, false)
	if err != nil {
		return nil, err
	}
	workers := opt.Workers
	if workers <= 0 {
		// Record the resolved pool cap, not the 0 sentinel, so the
		// manifest states the run's actual concurrency budget.
		workers = runtime.GOMAXPROCS(0)
	}
	out := &records.RunManifest{Label: m.Label(), Workers: workers, Runs: make([]records.RunSummary, 0, len(arts))}
	for i := range arts {
		out.Runs = append(out.Runs, arts[i].Summary())
	}
	return out, nil
}

// Sharded executes the matrix across worker OS processes through the
// shard coordinator. The zero value re-invokes the current executable
// with -shard-worker on a single shard; set Options.Shards to fan out.
type Sharded struct {
	Options ShardOptions
}

// Name implements Executor.
func (Sharded) Name() string { return "sharded" }

// Execute implements Executor.
func (e Sharded) Execute(ctx context.Context, cs *CaseStudy, m TaskMatrix) (*records.RunManifest, error) {
	return cs.RunMatrixSharded(ctx, e.Options, m)
}
