package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"strings"

	"repro/internal/records"
	"repro/internal/rl"
)

// Spec is the declarative, JSON-round-trippable description of one
// experiment run: which scenario to configure, which task matrices to
// expand, and the handful of knobs worth overriding per run. It is the
// single entry currency of the experiments API — Run(ctx, spec, exec)
// executes a Spec on any Executor, the experiments CLI compiles its
// flags down to one, and a spec file checked into a repo reproduces a
// run exactly (all random streams derive from the seeds captured
// here).
type Spec struct {
	// Name labels the run's manifest; empty derives a label from the
	// scenario and matrices.
	Name string `json:"name,omitempty"`
	// Scenario names the registered base configuration; empty means
	// "paper" (see RegisterScenario).
	Scenario string `json:"scenario,omitempty"`
	// Matrices enumerate the tasks to run, in order. Task IDs must be
	// unique across all matrices, so the combined manifest stays
	// unambiguous and shard merges can account for every task.
	Matrices []TaskMatrix `json:"matrices"`
	// Replications fans every matrix task out across the workload
	// seeds 1..Replications (one replica per seed, matching the
	// -replications flag's canonical seed list), so the paper-style
	// "mean over replicated workload seeds" tables are one spec field
	// instead of hand-written seed lists. Matrices that already
	// enumerate workload seeds themselves — kind "replicate", or an
	// explicit matrix-level ReplicationSeeds — are left untouched.
	// Mutually exclusive with ReplicationSeeds.
	Replications int `json:"replications,omitempty"`
	// ReplicationSeeds is Replications with an explicit seed list, for
	// runs that must pin particular seeds.
	ReplicationSeeds []int64 `json:"replication_seeds,omitempty"`
	// Jobs overrides the scenario's workload size when > 0. Mutually
	// exclusive with TracePath: a trace's job count is the trace's.
	Jobs int `json:"jobs,omitempty"`
	// TracePath overrides the scenario's workload with a recorded trace
	// (CSV, or JSON by extension), resolved against the process working
	// directory. See CaseStudy.TracePath.
	TracePath string `json:"trace_path,omitempty"`
	// Seed overrides the workload seed when set (pointer: seed 0 is a
	// legitimate override).
	Seed *int64 `json:"seed,omitempty"`
	// FleetSeed overrides the calibration snapshot seed when set.
	FleetSeed *int64 `json:"fleet_seed,omitempty"`
	// TrainSteps overrides the rlbase PPO training budget when > 0.
	TrainSteps int `json:"train_steps,omitempty"`
	// PPO overrides the full PPO trainer configuration when set —
	// mostly useful to shrink rollouts for smoke runs.
	PPO *rl.PPOConfig `json:"ppo,omitempty"`
	// Hosts lists worker daemon addresses (host:port) for hosts-level
	// execution: the CLI's -hosts flag overrides it, otherwise a
	// non-empty list makes the CLI run the spec on the Remote executor
	// against these daemons. Library callers configure RemoteOptions
	// directly; in-process and subprocess executors ignore it. Results
	// are unaffected either way — hosts say where tasks run, never what
	// they compute.
	Hosts []string `json:"hosts,omitempty"`
}

// LoadSpec decodes and validates a Spec. Unknown fields and trailing
// content are errors: a typoed key or a merge-conflict leftover after
// the closing brace must not silently run a different experiment than
// the file appears to describe.
func LoadSpec(r io.Reader) (*Spec, error) {
	var s Spec
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("experiments: decoding spec: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("experiments: spec has trailing content after the JSON document")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpecFile is LoadSpec from a path.
func LoadSpecFile(path string) (*Spec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	defer f.Close() //lint:allow errlint close of a read-only spec file cannot lose data
	s, err := LoadSpec(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// WriteJSON emits the spec as indented JSON, the round-trip inverse of
// LoadSpec.
func (s *Spec) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Validate checks the spec without running anything: the scenario must
// be registered, every matrix must expand, every override must be
// sane, and task IDs must be unique across the whole spec. A valid
// spec is executable by construction — executors re-derive the same
// expansions.
func (s *Spec) Validate() error {
	if !ScenarioRegistered(s.Scenario) {
		return fmt.Errorf("experiments: unknown scenario %q (registered: %v)", s.Scenario, ScenarioNames())
	}
	if len(s.Matrices) == 0 {
		return fmt.Errorf("experiments: spec has no task matrices")
	}
	if s.Jobs < 0 {
		return fmt.Errorf("experiments: spec jobs override %d < 0", s.Jobs)
	}
	if s.TracePath != "" && s.Jobs > 0 {
		return fmt.Errorf("experiments: spec sets both trace_path and a jobs override; a trace fixes its own job count")
	}
	if s.TrainSteps < 0 {
		return fmt.Errorf("experiments: spec train_steps override %d < 0", s.TrainSteps)
	}
	if s.Replications < 0 {
		return fmt.Errorf("experiments: spec replications %d < 0", s.Replications)
	}
	if s.Replications > 0 && len(s.ReplicationSeeds) > 0 {
		return fmt.Errorf("experiments: spec sets both replications and replication_seeds; pick one")
	}
	for _, h := range s.Hosts {
		if _, _, err := net.SplitHostPort(h); err != nil {
			return fmt.Errorf("experiments: spec host %q is not host:port: %w", h, err)
		}
	}
	seen := make(map[string]bool)
	for i, m := range s.runMatrices() {
		specs, err := m.specs(false)
		if err != nil {
			return fmt.Errorf("experiments: spec matrix %d: %w", i, err)
		}
		for _, sp := range specs {
			if seen[sp.id] {
				return fmt.Errorf("experiments: spec enumerates task %q twice", sp.id)
			}
			seen[sp.id] = true
		}
	}
	return nil
}

// CanonicalReplicationSeeds is the seed list a bare replication count
// expands to: 1..n. It is the one definition shared by the spec-level
// Replications field and the CLI's -replications flag, so
// `"replications": 5` in a spec and `-replications 5` on the command
// line describe the same run by construction.
func CanonicalReplicationSeeds(n int) []int64 {
	seeds := make([]int64, n)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// replicationSeeds resolves the spec-level replication request to an
// explicit seed list: ReplicationSeeds verbatim, or the canonical
// 1..Replications. Nil when the spec requests no replication.
func (s *Spec) replicationSeeds() []int64 {
	if len(s.ReplicationSeeds) > 0 {
		return s.ReplicationSeeds
	}
	if s.Replications > 0 {
		return CanonicalReplicationSeeds(s.Replications)
	}
	return nil
}

// runMatrices returns the matrices Run actually executes: the declared
// matrices with spec-level replication lowered onto each one that does
// not already enumerate workload seeds itself. Lowering onto the
// TaskMatrix (rather than looping in Run) is what makes replication
// executor-agnostic: the seeds travel inside the ShardSpec, so worker
// processes rebuild the identical fan-out.
func (s *Spec) runMatrices() []TaskMatrix {
	seeds := s.replicationSeeds()
	if seeds == nil {
		return s.Matrices
	}
	out := append([]TaskMatrix(nil), s.Matrices...)
	for i := range out {
		if out[i].Kind == "replicate" || len(out[i].ReplicationSeeds) > 0 {
			continue
		}
		out[i].ReplicationSeeds = seeds
	}
	return out
}

// Label names the run's manifest: Name when set, otherwise the
// resolved scenario joined with the matrix labels.
func (s *Spec) Label() string {
	if s.Name != "" {
		return s.Name
	}
	scenario := s.Scenario
	if scenario == "" {
		scenario = "paper"
	}
	labels := make([]string, len(s.Matrices))
	for i, m := range s.Matrices {
		labels[i] = m.Label()
	}
	return scenario + ":" + strings.Join(labels, "+")
}

// CaseStudy materializes the spec: the scenario's fresh case study
// with the spec's overrides applied. Each call returns an independent
// value.
func (s *Spec) CaseStudy() (*CaseStudy, error) {
	cs, err := NewScenario(s.Scenario)
	if err != nil {
		return nil, err
	}
	if s.Jobs > 0 {
		cs.Workload.N = s.Jobs
	}
	if s.TracePath != "" {
		cs.TracePath = s.TracePath
	}
	if s.Seed != nil {
		cs.Workload.Seed = *s.Seed
	}
	if s.FleetSeed != nil {
		cs.FleetSeed = *s.FleetSeed
	}
	if s.TrainSteps > 0 {
		cs.TrainSteps = s.TrainSteps
	}
	if s.PPO != nil {
		cs.PPO = *s.PPO
	}
	return cs, nil
}

// Run executes a declarative spec on the given executor and returns
// the combined manifest, rows in spec order. A nil executor runs
// sequentially. This is the experiments API: the legacy per-artifact
// entry points (RunAllParallel, PhiSweepParallel, RunAllSharded, …)
// are thin wrappers over the same engine and remain only for
// compatibility.
//
// For fixed seeds the manifest is identical (wall times and worker
// accounting aside) across the Sequential, Parallel and Sharded
// executors, and identical to the legacy paths: every backend expands
// the same matrices into the same task list and every task derives its
// random streams from seeds the spec pins.
func Run(ctx context.Context, spec Spec, exec Executor) (*records.RunManifest, error) {
	if exec == nil {
		exec = Sequential{}
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cs, err := spec.CaseStudy()
	if err != nil {
		return nil, err
	}
	out := &records.RunManifest{Label: spec.Label()}
	for _, m := range spec.runMatrices() {
		mf, err := exec.Execute(ctx, cs, m)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s on %s executor: %w", m.Label(), exec.Name(), err)
		}
		// Executors agree on the workers accounting across matrices of
		// one run; keep the last value rather than summing repeats.
		out.Workers = mf.Workers
		out.Runs = append(out.Runs, mf.Runs...)
	}
	return out, nil
}
