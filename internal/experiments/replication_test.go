package experiments

import (
	"bytes"
	"context"
	"reflect"
	"testing"

	"repro/internal/records"
	"repro/internal/stats"
)

// TestReplicationExpansion pins the fan-out: task-major order, replica
// IDs via records.ReplicaID, the workload seed overridden after the
// base task's own mutation, and replicate-kind matrices left exempt
// from spec-level replication.
func TestReplicationExpansion(t *testing.T) {
	spec := Spec{
		ReplicationSeeds: []int64{7, 8},
		Matrices: []TaskMatrix{
			{Kind: "modes", Modes: []string{"speed", "fair"}},
			{Kind: "replicate", Mode: "speed", Seeds: []int64{1}},
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	effective := spec.runMatrices()
	labels, err := effective[0].TaskLabels()
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"mode/speed@seed7", "mode/speed@seed8", "mode/fair@seed7", "mode/fair@seed8"}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
	if len(effective[1].ReplicationSeeds) != 0 {
		t.Fatalf("replicate matrix inherited spec-level replication: %+v", effective[1])
	}
	// The declared spec is untouched — lowering happens on a copy.
	if len(spec.Matrices[0].ReplicationSeeds) != 0 {
		t.Fatal("runMatrices mutated the spec's own matrices")
	}

	// Replications: N is the canonical 1..N seed list.
	counted := Spec{Replications: 3, Matrices: []TaskMatrix{{Kind: "modes", Modes: []string{"fair"}}}}
	labels, err = counted.runMatrices()[0].TaskLabels()
	if err != nil {
		t.Fatal(err)
	}
	want = []string{"mode/fair@seed1", "mode/fair@seed2", "mode/fair@seed3"}
	if !reflect.DeepEqual(labels, want) {
		t.Fatalf("labels = %v, want %v", labels, want)
	}
}

// TestReplicatedSweepComposesMutations: replicating a sweep matrix
// keeps the swept value AND overrides the workload seed — the two
// mutations compose rather than clobber.
func TestReplicatedSweepComposesMutations(t *testing.T) {
	m := TaskMatrix{Kind: "phi-sweep", Mode: "speed", Values: []float64{0.9}, ReplicationSeeds: []int64{5}}
	specs, err := m.specs(false)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].id != "phi-sweep/speed/0.9@seed5" {
		t.Fatalf("specs = %+v", specs)
	}
	snap := smallCase()
	specs[0].mutate(snap)
	if snap.Core.Phi != 0.9 || snap.Workload.Seed != 5 {
		t.Fatalf("mutations did not compose: phi=%g seed=%d", snap.Core.Phi, snap.Workload.Seed)
	}
}

// TestReplicatedSpecExecutorEquivalence is the tentpole's acceptance
// gate: one replicated Spec produces bit-identical manifests — and
// therefore bit-identical aggregated manifests — under the Sequential,
// Parallel and Sharded executors, the per-seed rows record the
// replication seeds, and significance-diffing two such runs is Empty
// while a run over different seeds is flagged.
func TestReplicatedSpecExecutorEquivalence(t *testing.T) {
	spec := specForSmallCase(TaskMatrix{Kind: "modes", Modes: []string{"speed", "fair"}})
	spec.ReplicationSeeds = []int64{5, 6, 7}

	manifests := make([]*records.RunManifest, 0, 3)
	for _, exec := range []Executor{
		Sequential{},
		Parallel{Options: ExecOptions{Workers: 4}},
		Sharded{Options: ShardOptions{Shards: 2, Command: selfWorker(t)}},
	} {
		m, err := Run(context.Background(), spec, exec)
		if err != nil {
			t.Fatalf("%s: %v", exec.Name(), err)
		}
		if len(m.Runs) != 6 {
			t.Fatalf("%s: %d rows, want 6", exec.Name(), len(m.Runs))
		}
		manifests = append(manifests, m)
	}
	wantRaw := normalizedJSON(t, manifests[0])
	var wantAgg bytes.Buffer
	agg0, err := records.AggregateManifests(manifests[0])
	if err != nil {
		t.Fatal(err)
	}
	agg0.Label = ""
	if err := agg0.WriteJSON(&wantAgg); err != nil {
		t.Fatal(err)
	}
	for i, m := range manifests[1:] {
		if got := normalizedJSON(t, m); !bytes.Equal(wantRaw, got) {
			t.Fatalf("executor %d manifest diverges:\n%s\n%s", i+1, got, wantRaw)
		}
		agg, err := records.AggregateManifests(m)
		if err != nil {
			t.Fatal(err)
		}
		agg.Label = ""
		var got bytes.Buffer
		if err := agg.WriteJSON(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantAgg.Bytes(), got.Bytes()) {
			t.Fatalf("executor %d aggregated manifest diverges:\n%s\n%s", i+1, got.Bytes(), wantAgg.Bytes())
		}
	}

	// The per-seed rows genuinely ran the replication seeds.
	for i, r := range manifests[0].Runs {
		_, seed, ok := records.SplitReplicaID(r.ID)
		if !ok || seed != r.WorkloadSeed {
			t.Fatalf("row %d (%s) seed %d not a replica of its ID", i, r.ID, r.WorkloadSeed)
		}
	}
	if agg0.Rows[0].N != 3 || !reflect.DeepEqual(agg0.Rows[0].Seeds, []int64{5, 6, 7}) {
		t.Fatalf("aggregated row = %+v", agg0.Rows[0])
	}

	// Two executors' aggregations are statistically indistinguishable;
	// a run over different seeds is flagged (drifted seed config at
	// minimum — it is a different replication by construction).
	aggB, err := records.AggregateManifests(manifests[1])
	if err != nil {
		t.Fatal(err)
	}
	d, err := records.DiffAggregated(agg0, aggB, records.SigOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Empty() {
		var buf bytes.Buffer
		d.Write(&buf)
		t.Fatalf("same spec, two executors, significant diff:\n%s", buf.String())
	}
	shifted := spec
	shifted.ReplicationSeeds = []int64{8, 9, 10}
	sm, err := Run(context.Background(), shifted, Sequential{})
	if err != nil {
		t.Fatal(err)
	}
	aggS, err := records.AggregateManifests(sm)
	if err != nil {
		t.Fatal(err)
	}
	d, err = records.DiffAggregated(agg0, aggS, records.SigOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Empty() {
		t.Fatal("different replication seeds diffed Empty")
	}
}

// TestReplicateCarriesStdErr is the satellite bugfix gate:
// RunReplicated's per-metric stats carry the StdErr that
// stats.AggregateSamples computes, instead of silently dropping it.
func TestReplicateCarriesStdErr(t *testing.T) {
	cs := smallCase()
	cs.Workload.N = 30
	rep, arts, err := cs.RunReplicatedParallel(context.Background(), ParallelOptions{Workers: 2}, "speed", []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	var tsim []float64
	for i := range arts {
		tsim = append(tsim, arts[i].Results.TotalSimTime)
	}
	want := stats.AggregateSamples(tsim)
	if rep.TsimStat.StdErr != want.StdErr {
		t.Fatalf("StdErr = %g, want %g", rep.TsimStat.StdErr, want.StdErr)
	}
	if want.StdErr <= 0 {
		t.Fatalf("degenerate fixture: StdErr = %g (seeds produced identical runs)", want.StdErr)
	}
	if rep.TsimStat.CI95 != want.CI95 || rep.TsimStat.Std != want.Std {
		t.Fatalf("replicated stat drifted from AggregateSamples: %+v vs %+v", rep.TsimStat, want)
	}
}
