package experiments

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
)

// A ScenarioFunc builds a fresh, fully configured case study for one
// named scenario. Every call must return an independent value: Run
// mutates the returned case study with spec overrides and caches the
// trained rlbase policy on it.
type ScenarioFunc func() *CaseStudy

// scenarios maps scenario names to constructors. Built-ins register in
// init; user packages may register more at startup.
var scenarios = struct {
	sync.RWMutex
	byName map[string]ScenarioFunc
}{byName: make(map[string]ScenarioFunc)}

// RegisterScenario adds a named scenario. Duplicate names fail loudly:
// two packages redefining the same scenario would silently change what
// a spec file means.
func RegisterScenario(name string, fn ScenarioFunc) error {
	if name == "" {
		return fmt.Errorf("experiments: RegisterScenario with empty name")
	}
	if fn == nil {
		return fmt.Errorf("experiments: RegisterScenario %q with nil constructor", name)
	}
	scenarios.Lock()
	defer scenarios.Unlock()
	if _, dup := scenarios.byName[name]; dup {
		return fmt.Errorf("experiments: scenario %q already registered", name)
	}
	scenarios.byName[name] = fn
	return nil
}

// MustRegisterScenario is RegisterScenario that panics on error, for
// package init use.
func MustRegisterScenario(name string, fn ScenarioFunc) {
	if err := RegisterScenario(name, fn); err != nil {
		panic(err)
	}
}

// NewScenario builds a fresh case study for the named scenario. The
// empty name resolves to "paper".
func NewScenario(name string) (*CaseStudy, error) {
	if name == "" {
		name = "paper"
	}
	scenarios.RLock()
	fn, ok := scenarios.byName[name]
	scenarios.RUnlock()
	if !ok {
		return nil, fmt.Errorf("experiments: unknown scenario %q (registered: %v)", name, ScenarioNames())
	}
	return fn(), nil
}

// ScenarioRegistered reports whether name resolves to a scenario.
func ScenarioRegistered(name string) bool {
	if name == "" {
		name = "paper"
	}
	scenarios.RLock()
	defer scenarios.RUnlock()
	_, ok := scenarios.byName[name]
	return ok
}

// ScenarioNames lists the registered scenarios, sorted.
func ScenarioNames() []string {
	scenarios.RLock()
	defer scenarios.RUnlock()
	out := make([]string, 0, len(scenarios.byName))
	//lint:allow detlint collect-then-sort: the sort.Strings below fixes the order before anyone observes it
	for name := range scenarios.byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// The built-in scenarios. "paper" is the case study exactly as §7
// configures it (Default); the other two stretch the same machinery
// along the axes the paper holds fixed — fleet shape and arrival
// pressure — without touching any experiment code, which is the point
// of the registry.
func init() {
	MustRegisterScenario("paper", Default)
	MustRegisterScenario("hetero-fleet", HeteroFleet)
	MustRegisterScenario("stress-arrivals", StressArrivals)
	MustRegisterScenario("calibration-drift", CalibrationDrift)
	MustRegisterScenario("trace-replay", TraceReplay)
}

// HeteroFleet is the paper's workload on a mixed-capacity cloud
// (127+127+80+65+27 qubits, with the small devices rated fastest —
// see device.HeterogeneousFleet). Capacity drops from 635 to 426
// qubits while every job still needs at least two devices, so the
// speed/fidelity trade-off sharpens: policies must now also decide
// whether to touch the slow large machines at all.
func HeteroFleet() *CaseStudy {
	cs := Default()
	cs.FleetPreset = "hetero"
	return cs
}

// StressArrivals is the paper's cloud under 6× arrival pressure: the
// mean inter-arrival time drops from 60s to 10s, so jobs pile up
// faster than the fleet drains them and queueing discipline — not raw
// placement quality — dominates the outcome.
func StressArrivals() *CaseStudy {
	cs := Default()
	cs.Workload.MeanInterarrival = 10
	return cs
}

// CalibrationDrift is the paper's workload on drifting hardware: every
// simulated hour each device's calibration takes a 30% relative
// random-walk step and its error score is recomputed, so error-aware
// policies chase a moving target — the dynamic hardware variability
// the paper's model omits (§7.2). Drift lives inside Core, so the
// scenario reproduces bit-identically on the Sequential, Parallel and
// Sharded executors alike.
func CalibrationDrift() *CaseStudy {
	cs := Default()
	cs.Core.Drift = core.DriftConfig{IntervalS: 3600, Rel: 0.3, Seed: 17}
	return cs
}

// TraceReplay replays a recorded workload trace instead of generating
// the synthetic workload, so a captured production stream (or any
// workload exported with job.WriteCSV) runs under every strategy and
// executor with full manifest provenance. The default trace is the
// committed smoke trace, resolved against the repository root (the
// experiments CLI's working directory); a spec's trace_path override
// points it anywhere else.
func TraceReplay() *CaseStudy {
	cs := Default()
	cs.TracePath = "specs/trace-smoke.csv"
	return cs
}
