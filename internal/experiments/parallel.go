package experiments

import (
	"context"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/experiments/runner"
	"repro/internal/job"
	"repro/internal/policy"
	"repro/internal/records"
	"repro/internal/stats"
)

// ExecOptions carries the orchestration knobs every executor
// understands — the single options struct shared by the in-process
// pool (Sequential, Parallel) and the multi-process Sharded executor,
// which embeds it in ShardOptions.
type ExecOptions struct {
	// Workers caps concurrent simulations. In-process, <= 0 uses
	// GOMAXPROCS; under sharded execution it sizes each worker
	// process's internal pool (<= 1 keeps workers sequential).
	Workers int
	// Retries is the crash respawn budget per shard: 0 means
	// shard.DefaultRetries, negative disables retries. In-process
	// executors have no crash domain and ignore it.
	Retries int
	// OnProgress, if set, receives one callback per finished task,
	// whichever executor ran it.
	OnProgress func(runner.Progress)
}

// ParallelOptions is the pre-registry name of ExecOptions.
//
// Deprecated: use ExecOptions (or the Parallel executor with Run).
type ParallelOptions = ExecOptions

// RunArtifact is one completed simulation task: the exact configuration
// that produced it, the headline results, and the full run for deeper
// analysis. Artifacts are what the runner aggregates into a manifest.
type RunArtifact struct {
	// ID uniquely names the task, e.g. "mode/speed" or "phi-sweep/speed/0.95".
	ID string
	// Kind groups tasks: "mode", "phi-sweep", "lambda-sweep",
	// "replicate", "rl-deploy".
	Kind string
	// Mode is the allocation strategy simulated.
	Mode string
	// Param is the swept parameter value (sweep kinds only).
	Param float64
	// Workload and Core snapshot the configuration the task ran with;
	// FleetPreset names the device fleet, FleetSeed and RLSeed pin the
	// remaining random streams. TrainSteps and RLDeterministic pin the
	// rlbase policy (training budget and sampled-vs-mean deployment).
	Workload    job.SyntheticConfig
	Core        core.Config
	FleetPreset string
	// TracePath names the replayed workload trace; empty for synthetic
	// workloads.
	TracePath       string
	FleetSeed       int64
	RLSeed          int64
	TrainSteps      int
	RLDeterministic bool
	// Results holds the Table 2 metrics.
	Results core.Results
	// Wall is the host wall-clock duration of the simulation.
	Wall time.Duration
	// Run is the full mode run (records, per-job fidelities). It is
	// populated only where callers need it (RunAllParallel, which feeds
	// Fig. 6); sweep and replication artifacts carry just Results so a
	// 100-seed replication does not pin 100 record sets in memory.
	Run *ModeRun
}

// Summary flattens the artifact for manifest export. The rlbase policy
// knobs are emitted only for rlbase rows; they do not affect the
// heuristic modes.
func (a *RunArtifact) Summary() records.RunSummary {
	s := records.RunSummary{
		ID:                a.ID,
		Kind:              a.Kind,
		Mode:              a.Mode,
		Param:             a.Param,
		WorkloadSeed:      a.Workload.Seed,
		FleetSeed:         a.FleetSeed,
		FleetPreset:       a.FleetPreset,
		Phi:               a.Core.Phi,
		Lambda:            a.Core.Lambda,
		Jobs:              a.Workload.N,
		MeanInterarrivalS: a.Workload.MeanInterarrival,
		TracePath:         a.TracePath,
		TsimS:             a.Results.TotalSimTime,
		FidelityMean:      a.Results.FidelityMean,
		FidelityStd:       a.Results.FidelityStd,
		TcommS:            a.Results.TotalCommTime,
		MeanDevicesPerJob: a.Results.MeanDevicesPerJob,
		MeanWaitS:         a.Results.MeanWaitTime,
		WallMS:            float64(a.Wall) / float64(time.Millisecond),
	}
	if a.TracePath != "" {
		// Trace rows report what the trace delivered; the synthetic
		// generator's size and arrival knobs never applied.
		s.Jobs = a.Results.JobsFinished
		s.MeanInterarrivalS = 0
	}
	if a.Mode == "rlbase" {
		steps, seed, det := a.TrainSteps, a.RLSeed, a.RLDeterministic
		s.TrainSteps = &steps
		s.RLSeed = &seed
		s.RLDeterministic = &det
	}
	return s
}

// snapshot returns a config-identical CaseStudy whose state is fully
// private to one task: value fields are copied and the cached trained
// policy (if any) is deep-cloned, because MLP forward passes mutate
// activation caches and must not be shared across workers. Per-task
// determinism then follows from the seeds captured in the snapshot
// (Workload.Seed, FleetSeed, RLSeed) — no random stream is shared.
func (cs *CaseStudy) snapshot() *CaseStudy {
	c := *cs
	if cs.trained != nil {
		c.trained = cs.trained.Clone()
	}
	return &c
}

// ensureTrained trains the PPO policy up front when any requested mode
// needs a model (per the policy registry), so worker snapshots share
// identical (cloned) weights and training cost is paid once rather
// than once per task.
func (cs *CaseStudy) ensureTrained(modes ...string) error {
	for _, m := range modes {
		if policy.NeedsModel(m) {
			_, _, err := cs.TrainRL(nil)
			return err
		}
	}
	return nil
}

// runSpec describes one simulation task before execution.
type runSpec struct {
	id, kind, mode string
	param          float64
	// keepRun retains the full ModeRun on the artifact; leave false
	// when only Results is consumed so the run's records can be freed.
	keepRun bool
	// mutate adapts the task's private snapshot (sweep value, workload
	// seed). Nil means run the snapshot unchanged.
	mutate func(*CaseStudy)
}

// task converts a spec into a pool task that runs on a private snapshot.
func (cs *CaseStudy) task(spec runSpec) runner.Task[RunArtifact] {
	return runner.Task[RunArtifact]{
		Label: spec.id,
		Run: func(context.Context) (RunArtifact, error) {
			snap := cs.snapshot()
			if spec.mutate != nil {
				spec.mutate(snap)
			}
			//lint:allow detlint wall-clock run duration is manifest metadata about the host, not simulation state
			start := time.Now()
			run, err := snap.RunMode(spec.mode)
			if err != nil {
				return RunArtifact{}, err
			}
			art := RunArtifact{
				ID:              spec.id,
				Kind:            spec.kind,
				Mode:            spec.mode,
				Param:           spec.param,
				Workload:        snap.Workload,
				Core:            snap.Core,
				FleetPreset:     snap.FleetPreset,
				TracePath:       snap.TracePath,
				FleetSeed:       snap.FleetSeed,
				RLSeed:          snap.RLSeed,
				TrainSteps:      snap.TrainSteps,
				RLDeterministic: snap.RLDeterministic,
				Results:         run.Results,
				Wall:            time.Since(start),
			}
			if spec.keepRun {
				art.Run = run
			}
			return art, nil
		},
	}
}

// runSpecs executes specs through the worker pool.
func (cs *CaseStudy) runSpecs(ctx context.Context, opt ParallelOptions, specs []runSpec) ([]RunArtifact, error) {
	tasks := make([]runner.Task[RunArtifact], len(specs))
	for i, spec := range specs {
		tasks[i] = cs.task(spec)
	}
	pool := runner.Pool[RunArtifact]{Workers: opt.Workers, OnProgress: opt.OnProgress}
	return pool.Run(ctx, tasks)
}

// RunAllParallel fans the four strategies of RunAll out across the
// worker pool. Results are bit-identical to the sequential path: every
// task runs on a private snapshot seeded only from the case study's
// configured seeds. The rlbase policy is trained (once) before fan-out.
func (cs *CaseStudy) RunAllParallel(ctx context.Context, opt ParallelOptions) (map[string]*ModeRun, []RunArtifact, error) {
	arts, err := cs.runMatrix(ctx, opt, TaskMatrix{Kind: "modes"}, true)
	if err != nil {
		return nil, nil, err
	}
	out := make(map[string]*ModeRun, len(arts))
	for i := range arts {
		out[arts[i].Mode] = arts[i].Run
	}
	return out, arts, nil
}

// PhiSweepParallel is the parallel form of PhiSweep.
func (cs *CaseStudy) PhiSweepParallel(ctx context.Context, opt ParallelOptions, mode string, phis []float64) ([]SweepPoint, []RunArtifact, error) {
	return cs.sweepParallel(ctx, opt, TaskMatrix{Kind: "phi-sweep", Mode: mode, Values: phis})
}

// LambdaSweepParallel is the parallel form of LambdaSweep.
func (cs *CaseStudy) LambdaSweepParallel(ctx context.Context, opt ParallelOptions, mode string, lambdas []float64) ([]SweepPoint, []RunArtifact, error) {
	return cs.sweepParallel(ctx, opt, TaskMatrix{Kind: "lambda-sweep", Mode: mode, Values: lambdas})
}

func (cs *CaseStudy) sweepParallel(ctx context.Context, opt ParallelOptions, m TaskMatrix) ([]SweepPoint, []RunArtifact, error) {
	arts, err := cs.runMatrix(ctx, opt, m, false)
	if err != nil {
		return nil, nil, err
	}
	points := make([]SweepPoint, len(arts))
	for i := range arts {
		points[i] = SweepPoint{Param: arts[i].Param, Mode: m.Mode, Results: arts[i].Results}
	}
	sort.Slice(points, func(i, j int) bool { return points[i].Param < points[j].Param })
	return points, arts, nil
}

// RLDeploymentAblationParallel runs the sampled and deterministic
// rlbase deployments as two pool tasks and returns both runs plus
// their artifacts.
func (cs *CaseStudy) RLDeploymentAblationParallel(ctx context.Context, opt ParallelOptions) (sampled, deterministic *ModeRun, arts []RunArtifact, err error) {
	arts, err = cs.runMatrix(ctx, opt, TaskMatrix{Kind: "rl-deploy"}, true)
	if err != nil {
		return nil, nil, nil, err
	}
	return arts[0].Run, arts[1].Run, arts, nil
}

// RunReplicatedParallel is the parallel form of RunReplicated: one task
// per workload seed, aggregated into mean/std/min/max and a 95%
// confidence interval per headline metric.
func (cs *CaseStudy) RunReplicatedParallel(ctx context.Context, opt ParallelOptions, mode string, seeds []int64) (*ReplicatedResults, []RunArtifact, error) {
	arts, err := cs.runMatrix(ctx, opt, TaskMatrix{Kind: "replicate", Mode: mode, Seeds: seeds}, false)
	if err != nil {
		return nil, nil, err
	}
	var tsim, muF, tcomm []float64
	for i := range arts {
		tsim = append(tsim, arts[i].Results.TotalSimTime)
		muF = append(muF, arts[i].Results.FidelityMean)
		tcomm = append(tcomm, arts[i].Results.TotalCommTime)
	}
	return &ReplicatedResults{
		Mode:      mode,
		Seeds:     append([]int64(nil), seeds...),
		TsimStat:  replicate(tsim),
		MuFStat:   replicate(muF),
		TcommStat: replicate(tcomm),
	}, arts, nil
}

// replicate summarizes one metric across replicated runs. Every field
// stats.AggregateSamples computes is carried over — dropping StdErr
// here once left significance tests without their denominator.
func replicate(xs []float64) ReplicatedStat {
	a := stats.AggregateSamples(xs)
	st := ReplicatedStat{N: a.N, Mean: a.Mean, Std: a.Std, StdErr: a.StdErr, CI95: a.CI95}
	for i, x := range xs {
		if i == 0 || x < st.Min {
			st.Min = x
		}
		if i == 0 || x > st.Max {
			st.Max = x
		}
	}
	return st
}
