package experiments

import (
	"context"
	"strings"
	"testing"

	"repro/internal/records"
)

// shrinkDrift shrinks the calibration-drift scenario to a test-sized
// workload. Exec times are ~20 simulated minutes per job, so even a
// 16-job run crosses several 3600s drift intervals.
func shrinkDrift(t *testing.T) *CaseStudy {
	t.Helper()
	cs, err := NewScenario("calibration-drift")
	if err != nil {
		t.Fatal(err)
	}
	cs.Workload.N = 16
	return cs
}

func TestCalibrationDriftScenarioRegistered(t *testing.T) {
	if !ScenarioRegistered("calibration-drift") {
		t.Fatal("calibration-drift scenario not registered")
	}
	cs := shrinkDrift(t)
	if !cs.Core.Drift.Enabled() {
		t.Fatalf("scenario drift config not enabled: %+v", cs.Core.Drift)
	}
}

// TestCalibrationDriftChangesOutcome checks the drift process actually
// fires: the same workload under the paper scenario and under drift
// must disagree on mean fidelity (the error rates moved mid-run).
func TestCalibrationDriftChangesOutcome(t *testing.T) {
	drift := shrinkDrift(t)
	driftRun, err := drift.RunMode("speed")
	if err != nil {
		t.Fatal(err)
	}
	static, err := NewScenario("paper")
	if err != nil {
		t.Fatal(err)
	}
	static.Workload.N = drift.Workload.N
	staticRun, err := static.RunMode("speed")
	if err != nil {
		t.Fatal(err)
	}
	if driftRun.Results.FidelityMean == staticRun.Results.FidelityMean {
		t.Fatalf("drift did not change fidelity: %g", driftRun.Results.FidelityMean)
	}

	// Determinism: a fresh run of the same scenario reproduces exactly.
	again, err := shrinkDrift(t).RunMode("speed")
	if err != nil {
		t.Fatal(err)
	}
	if again.Results != driftRun.Results {
		t.Fatalf("drift run not deterministic:\n%+v\n%+v", again.Results, driftRun.Results)
	}
}

// TestCalibrationDriftExecutorEquivalence runs the scenario as a spec
// on the Sequential and Parallel executors: the drift process must
// reproduce bit-identically (the Sharded leg is covered by the Core
// round-trip test below plus the generic shard equivalence suite).
func TestCalibrationDriftExecutorEquivalence(t *testing.T) {
	spec := Spec{
		Scenario: "calibration-drift",
		Jobs:     16,
		Matrices: []TaskMatrix{{Kind: "modes", Modes: []string{"speed", "fair"}}},
	}
	ctx := context.Background()
	seq, err := Run(ctx, spec, Sequential{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(ctx, spec, Parallel{})
	if err != nil {
		t.Fatal(err)
	}
	if diff := records.DiffManifests(seq, par); !diff.Empty() {
		var sb strings.Builder
		if err := diff.Write(&sb); err != nil {
			t.Fatal(err)
		}
		t.Fatalf("sequential vs parallel drift runs differ:\n%s", sb.String())
	}
}

// TestShardSpecCarriesDrift pins the transport invariant the scenario
// relies on: the drift config rides inside Core through the ShardSpec,
// so worker processes rebuild the identical drifting simulation.
func TestShardSpecCarriesDrift(t *testing.T) {
	cs := shrinkDrift(t)
	rebuilt := cs.shardSpec(TaskMatrix{Kind: "modes"}, 1).caseStudy()
	if rebuilt.Core.Drift != cs.Core.Drift {
		t.Fatalf("drift config lost in shard round trip: %+v vs %+v",
			rebuilt.Core.Drift, cs.Core.Drift)
	}
}
