// Package experiments regenerates every table and figure in the paper's
// evaluation (§6.6, §7): Table 2 (the four-strategy comparison on 1,000
// large circuits), Figure 5 (PPO training curves), Figure 6 (per-strategy
// fidelity distributions), plus the ablation sweeps for the model
// constants the paper fixes (φ, λ) and the RL deployment mode.
//
// The API is declarative: describe a run as a Spec — a registered
// scenario ("paper", "hetero-fleet", "stress-arrivals", or your own
// via RegisterScenario) plus task matrices and overrides — and hand it
// to Run with any Executor (Sequential, Parallel across a goroutine
// pool, Sharded across worker OS processes, or Remote across a fleet
// of TCP worker daemons — see ServeShardDaemon and docs/operations.md).
// All executors produce identical manifests for fixed seeds, remote
// rows additionally carrying host/attempt provenance; allocation
// strategies resolve
// through the internal/policy registry, so new policies and new
// scenarios plug in without touching this package. The per-artifact
// entry points below (RunAll, PhiSweep, RunAllParallel, …) predate the
// Spec API and survive as thin wrappers over the same engine.
package experiments

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/job"
	"repro/internal/policy"
	"repro/internal/records"
	"repro/internal/rl"
	"repro/internal/rlsched"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Modes are the four allocation strategies of the case study, in the
// paper's Table 2 order.
var Modes = []string{"speed", "fidelity", "fair", "rlbase"}

// CaseStudy bundles the full experimental configuration. The zero value
// is unusable; start from Default().
type CaseStudy struct {
	// Workload generates the synthetic job set (§7: 1,000 jobs,
	// q∈[130,250], d∈[5,20], s∈[10k,100k]).
	Workload job.SyntheticConfig
	// TracePath, when set, replays a recorded workload trace (a CSV or
	// JSON job file, by extension) instead of generating Workload.
	// The trace still has to satisfy the Eq. 1 distributed constraint
	// against the configured fleet. Workload's distribution fields are
	// ignored; its Seed mutation under replication is a no-op, since a
	// trace is the same jobs every time. The path resolves against the
	// process working directory (worker processes inherit it), like
	// every other path the experiments CLI takes.
	TracePath string
	// Core carries the model constants (M, K, φ, λ).
	Core core.Config
	// FleetPreset names the device fleet (see device.PresetFleet):
	// "" or "standard" is the paper's five-Eagle cloud, "hetero" the
	// mixed-capacity variant. The name travels inside a ShardSpec, so
	// scenario fleets survive the trip into worker processes.
	FleetPreset string
	// FleetSeed draws the synthetic calibration snapshot.
	FleetSeed int64
	// TrainSteps is the PPO training budget for the rlbase mode (the
	// paper trains for 100,000 timesteps).
	TrainSteps int
	// PPO is the trainer configuration.
	PPO rl.PPOConfig
	// RLSeed seeds deployment-time action sampling.
	RLSeed int64
	// RLDeterministic deploys mean actions instead of sampling.
	RLDeterministic bool

	trained *rl.GaussianPolicy
	history []rl.TrainStats
	// injected marks a policy supplied via UseTrainedPolicy rather than
	// trained here: it is not reproducible from the config fields alone,
	// which the sharded executor must know (workers rebuild everything
	// from the serialized config).
	injected bool
}

// Default returns the paper's case-study configuration with a reduced
// 20k-step training budget (pass 100000 for the paper's full budget;
// the curves plateau around 40–50k steps, §6.6).
func Default() *CaseStudy {
	return &CaseStudy{
		Workload:   job.DefaultSyntheticConfig(),
		Core:       core.DefaultConfig(),
		FleetSeed:  2025,
		TrainSteps: 20000,
		PPO:        rl.DefaultPPOConfig(),
		RLSeed:     7,
	}
}

// Fleet builds the configured device cloud (FleetPreset; the paper's
// five-Eagle fleet by default) on a fresh simulation environment.
func (cs *CaseStudy) Fleet(env *sim.Environment) ([]*device.Device, error) {
	return device.PresetFleet(cs.FleetPreset, env, cs.FleetSeed)
}

// Jobs produces the workload — the synthetic generator, or the
// TracePath replay — and checks the Eq. 1 constraint against the
// configured fleet preset's capacities.
func (cs *CaseStudy) Jobs() ([]*job.QJob, error) {
	jobs, err := cs.loadWorkload()
	if err != nil {
		return nil, err
	}
	maxSingle, total, err := device.PresetCapacity(cs.FleetPreset)
	if err != nil {
		return nil, err
	}
	if err := job.CheckDistributedConstraint(jobs, maxSingle, total); err != nil {
		return nil, err
	}
	return jobs, nil
}

// loadWorkload reads the TracePath trace, or generates the synthetic
// workload when no trace is configured.
func (cs *CaseStudy) loadWorkload() ([]*job.QJob, error) {
	if cs.TracePath == "" {
		return job.Synthetic(cs.Workload)
	}
	f, err := os.Open(cs.TracePath)
	if err != nil {
		return nil, fmt.Errorf("experiments: workload trace: %w", err)
	}
	defer f.Close() //lint:allow errlint close of a read-only trace file cannot lose data
	if strings.EqualFold(filepath.Ext(cs.TracePath), ".json") {
		return job.LoadJSON(f)
	}
	return job.LoadCSV(f)
}

// TrainRL trains (and caches) the PPO policy on the QCloudGymEnv,
// returning the per-iteration statistics — the Fig. 5 series. Subsequent
// calls reuse the cached policy.
func (cs *CaseStudy) TrainRL(onIter func(rl.TrainStats)) (*rl.GaussianPolicy, []rl.TrainStats, error) {
	if cs.trained != nil {
		return cs.trained, cs.history, nil
	}
	env := sim.NewEnvironment()
	fleet, err := cs.Fleet(env)
	if err != nil {
		return nil, nil, err
	}
	info := rlsched.InfoFromFleet(fleet)
	gymCfg := rlsched.DefaultGymConfig()
	gymCfg.MinQubits = cs.Workload.MinQubits
	gymCfg.MaxQubits = cs.Workload.MaxQubits
	gymCfg.MinDepth = cs.Workload.MinDepth
	gymCfg.MaxDepth = cs.Workload.MaxDepth
	gymCfg.MinShots = cs.Workload.MinShots
	gymCfg.MaxShots = cs.Workload.MaxShots
	gymCfg.T2Factor = cs.Workload.T2Factor
	pol, hist, err := rlsched.Train(info, gymCfg, cs.PPO, cs.TrainSteps, onIter)
	if err != nil {
		return nil, nil, err
	}
	cs.trained = pol
	cs.history = hist
	return pol, hist, nil
}

// UseTrainedPolicy injects an externally trained policy (e.g. loaded
// from disk), skipping TrainRL. Injected policies are confined to
// in-process execution: the sharded entry points reject them, because
// worker processes rebuild the rlbase policy from the serialized
// config's seeds and would silently diverge from the injected weights.
func (cs *CaseStudy) UseTrainedPolicy(pol *rl.GaussianPolicy) {
	cs.trained = pol
	cs.injected = pol != nil
}

// policyFor resolves a mode name through the policy registry. Any
// registered policy is a valid mode; model-requiring policies (rlbase)
// get the case study's trained PPO policy as their model handle, so new
// allocation strategies plug in by registration without touching this
// package.
func (cs *CaseStudy) policyFor(mode string) (policy.Policy, error) {
	if err := checkMode(mode); err != nil {
		return nil, err
	}
	p := policy.Params{Seed: cs.RLSeed, Deterministic: cs.RLDeterministic, Phi: cs.Core.Phi}
	if policy.NeedsModel(mode) {
		trained, _, err := cs.TrainRL(nil)
		if err != nil {
			return nil, err
		}
		p.Model = trained
	}
	return policy.New(mode, p)
}

// ModeRun is one complete simulation of the workload under one strategy.
type ModeRun struct {
	Mode       string
	Results    core.Results
	Fidelities []float64
	Records    *records.Manager
}

// RunMode simulates the full workload under the named strategy.
func (cs *CaseStudy) RunMode(mode string) (*ModeRun, error) {
	pol, err := cs.policyFor(mode)
	if err != nil {
		return nil, err
	}
	jobs, err := cs.Jobs()
	if err != nil {
		return nil, err
	}
	env := sim.NewEnvironment()
	fleet, err := cs.Fleet(env)
	if err != nil {
		return nil, err
	}
	simEnv, err := core.NewQCloudSimEnv(env, fleet, pol, cs.Core)
	if err != nil {
		return nil, err
	}
	simEnv.SubmitWorkload(jobs)
	if d := cs.Core.Drift; d.Enabled() {
		// Drift is part of the case-study config, so it reproduces
		// identically on every executor (the ShardSpec carries Core).
		if err := simEnv.EnableCalibrationDrift(d.IntervalS, d.Rel, d.Seed); err != nil {
			return nil, err
		}
	}
	res, err := simEnv.Run()
	if err != nil {
		return nil, err
	}
	return &ModeRun{
		Mode:       mode,
		Results:    res,
		Fidelities: simEnv.Records.Fidelities(),
		Records:    simEnv.Records,
	}, nil
}

// RunAll runs every strategy and returns runs keyed by mode name. It is
// a sequential (single-worker) wrapper over RunAllParallel, so both
// paths share one execution engine and produce identical results.
//
// Deprecated: prefer Run with a {Kind: "modes"} matrix; RunAll remains
// for callers that need the full ModeRun state (Figure 6).
func (cs *CaseStudy) RunAll() (map[string]*ModeRun, error) {
	runs, _, err := cs.RunAllParallel(context.Background(), ParallelOptions{Workers: 1})
	return runs, err
}

// Table2 runs all four strategies and returns rows in the paper's order.
func (cs *CaseStudy) Table2() ([]core.Results, error) {
	runs, err := cs.RunAll()
	if err != nil {
		return nil, err
	}
	rows := make([]core.Results, 0, len(Modes))
	for _, mode := range Modes {
		rows = append(rows, runs[mode].Results)
	}
	return rows, nil
}

// Fig5Series converts PPO iteration statistics into the two Fig. 5
// series: mean episode reward and entropy loss versus timesteps.
func Fig5Series(hist []rl.TrainStats) (reward, entropyLoss *stats.Series) {
	reward = &stats.Series{Name: "mean_episode_reward"}
	entropyLoss = &stats.Series{Name: "entropy_loss"}
	for _, h := range hist {
		reward.Append(float64(h.Timesteps), h.MeanEpisodeReward)
		entropyLoss.Append(float64(h.Timesteps), h.EntropyLoss)
	}
	return reward, entropyLoss
}

// Fig6Histograms bins each run's fidelities over a common range, like
// the paper's Figure 6 panels. The range spans all runs' observed
// fidelities with a small margin.
func Fig6Histograms(runs map[string]*ModeRun, bins int) map[string]*stats.Histogram {
	lo, hi := 1.0, 0.0
	for _, r := range runs {
		for _, f := range r.Fidelities {
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
	}
	if hi <= lo {
		lo, hi = 0, 1
	}
	margin := (hi - lo) * 0.05
	lo -= margin
	hi += margin
	out := make(map[string]*stats.Histogram, len(runs))
	for mode, r := range runs {
		out[mode] = stats.NewHistogram(r.Fidelities, lo, hi, bins)
	}
	return out
}

// SweepPoint is one parameter setting's outcome in an ablation sweep.
type SweepPoint struct {
	Param   float64
	Mode    string
	Results core.Results
}

// PhiSweep re-runs the given mode across communication-penalty values,
// quantifying how the paper's fixed φ=0.95 drives the fidelity gap
// between low-k and high-k strategies. It is a sequential wrapper over
// PhiSweepParallel.
//
// Deprecated: prefer Run with a {Kind: "phi-sweep"} matrix.
func (cs *CaseStudy) PhiSweep(mode string, phis []float64) ([]SweepPoint, error) {
	points, _, err := cs.PhiSweepParallel(context.Background(), ParallelOptions{Workers: 1}, mode, phis)
	return points, err
}

// LambdaSweep re-runs the given mode across per-qubit communication
// latencies, the Eq. 9 parameter. It is a sequential wrapper over
// LambdaSweepParallel.
//
// Deprecated: prefer Run with a {Kind: "lambda-sweep"} matrix.
func (cs *CaseStudy) LambdaSweep(mode string, lambdas []float64) ([]SweepPoint, error) {
	points, _, err := cs.LambdaSweepParallel(context.Background(), ParallelOptions{Workers: 1}, mode, lambdas)
	return points, err
}

// ReplicatedStat summarizes one metric across workload seeds. Std is
// the sample (n−1) standard deviation — replications are a sample, not
// the population — and CI95 is the Student-t 95% confidence half-width
// derived from that same Std, so CI95 == t·Std/√N holds on the struct's
// own fields.
type ReplicatedStat struct {
	N                   int
	Mean, Std, Min, Max float64
	// StdErr is Std/√N, the standard error of the mean — the
	// denominator of Welch's t, so significance diffing of replicated
	// results needs it alongside CI95.
	StdErr float64
	CI95   float64
}

// ReplicatedResults aggregates a mode's Table 2 metrics across
// independent workload seeds — the statistical replication the paper's
// single-run Table 2 lacks.
type ReplicatedResults struct {
	Mode                         string
	Seeds                        []int64
	TsimStat, MuFStat, TcommStat ReplicatedStat
}

// RunReplicated runs the named mode once per workload seed and
// aggregates the headline metrics. The fleet (calibration) is held fixed
// so the variation isolates workload randomness. It is a sequential
// wrapper over RunReplicatedParallel.
//
// Deprecated: prefer Run with a {Kind: "replicate"} matrix and
// stats.AggregateSamples over the manifest rows.
func (cs *CaseStudy) RunReplicated(mode string, seeds []int64) (*ReplicatedResults, error) {
	rep, _, err := cs.RunReplicatedParallel(context.Background(), ParallelOptions{Workers: 1}, mode, seeds)
	return rep, err
}

// RLDeploymentAblation compares sampled versus deterministic deployment
// of the trained policy — isolating how much of the RL mode's fidelity
// loss comes from retained exploration noise. It is a sequential
// wrapper over RLDeploymentAblationParallel.
//
// Deprecated: prefer Run with a {Kind: "rl-deploy"} matrix.
func (cs *CaseStudy) RLDeploymentAblation() (sampled, deterministic *ModeRun, err error) {
	sampled, deterministic, _, err = cs.RLDeploymentAblationParallel(context.Background(), ParallelOptions{Workers: 1})
	return sampled, deterministic, err
}
