package faults

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
)

func mustInjector(t *testing.T, p *Plan) *Injector {
	t.Helper()
	in, err := NewInjector(p)
	if err != nil {
		t.Fatalf("NewInjector: %v", err)
	}
	return in
}

func TestParsePlanRejectsBadRules(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown layer", `{"seed":1,"rules":[{"layer":"disk","op":"read","kind":"cut"}]}`, "unknown layer"},
		{"bad op", `{"seed":1,"rules":[{"layer":"http","op":"frame","kind":"delay"}]}`, "no op"},
		{"kind mismatch", `{"seed":1,"rules":[{"layer":"transport","op":"frame","kind":"crash"}]}`, "not valid"},
		{"probability", `{"seed":1,"rules":[{"layer":"http","op":"request","kind":"error","p":1.5}]}`, "probability"},
		{"unknown field", `{"seed":1,"rules":[{"layer":"http","op":"request","kind":"error","when":"later"}]}`, "unknown field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParsePlan(strings.NewReader(tc.src))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

func TestScheduleDeterministicPerSeed(t *testing.T) {
	plan := &Plan{Seed: 42, Rules: []Rule{
		{Layer: LayerTransport, Op: OpFrame, Kind: KindReset, P: 0.3},
		{Layer: LayerTransport, Op: OpFrame, Kind: KindDelay, P: 0.5, DelayMS: 5},
	}}
	drive := func(in *Injector) []Event {
		for i := 0; i < 200; i++ {
			in.Decide(LayerTransport, OpFrame, "hostA")
		}
		return in.Events()
	}
	a := drive(mustInjector(t, plan))
	b := drive(mustInjector(t, plan))
	if len(a) == 0 {
		t.Fatal("probabilistic rules never fired over 200 opportunities")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same plan produced different event logs:\n%v\nvs\n%v", a, b)
	}
	other := &Plan{Seed: 43, Rules: plan.Rules}
	if c := drive(mustInjector(t, other)); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical event logs")
	}
}

func TestAfterAndMaxWindowFiring(t *testing.T) {
	in := mustInjector(t, &Plan{Seed: 1, Rules: []Rule{
		{Layer: LayerIngest, Op: OpLine, Kind: KindGarble, After: 3, Max: 2},
	}})
	fired := 0
	for i := 0; i < 10; i++ {
		if len(in.Decide(LayerIngest, OpLine, "")) > 0 {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2 (after=3, max=2)", fired)
	}
	evs := in.Events()
	if evs[0].Opportunity != 4 || evs[1].Opportunity != 5 {
		t.Fatalf("firing opportunities %d,%d; want 4,5", evs[0].Opportunity, evs[1].Opportunity)
	}
}

func TestTargetsRestrictRule(t *testing.T) {
	in := mustInjector(t, &Plan{Seed: 1, Rules: []Rule{
		{Layer: LayerHTTP, Op: OpRequest, Kind: KindError, Targets: []string{"POST /v1/jobs"}},
	}})
	if got := in.Decide(LayerHTTP, OpRequest, "GET /v1/healthz"); len(got) != 0 {
		t.Fatalf("rule fired on non-matching target: %v", got)
	}
	if got := in.Decide(LayerHTTP, OpRequest, "POST /v1/jobs"); len(got) != 1 {
		t.Fatalf("rule missed matching target: %v", got)
	}
}

func TestLineCrashPanicsWithPosition(t *testing.T) {
	in := mustInjector(t, &Plan{Seed: 1, Rules: []Rule{
		{Layer: LayerIngest, Op: OpLine, Kind: KindCrash, After: 2, Max: 1},
	}})
	crashed := func(pos int64) (c *Crash) {
		defer func() {
			if r := recover(); r != nil {
				c = r.(*Crash)
			}
		}()
		in.Line(pos, []byte(`{"job_id":"x"}`))
		return nil
	}
	if c := crashed(0); c != nil {
		t.Fatalf("crashed at opportunity 1 despite after=2: %v", c)
	}
	if c := crashed(1); c != nil {
		t.Fatalf("crashed at opportunity 2 despite after=2: %v", c)
	}
	c := crashed(7)
	if c == nil || c.Pos != 7 {
		t.Fatalf("crash = %v, want position 7", c)
	}
}

func TestLineGarbleAndCutCopyTheBuffer(t *testing.T) {
	orig := []byte(`{"job_id":"q1","num_qubits":4}`)
	buf := append([]byte(nil), orig...)
	in := mustInjector(t, &Plan{Seed: 1, Rules: []Rule{
		{Layer: LayerIngest, Op: OpLine, Kind: KindGarble, Max: 1},
	}})
	got := in.Line(0, buf)
	if bytes.Equal(got, orig) {
		t.Fatal("garble returned the line unchanged")
	}
	if !bytes.Equal(buf, orig) {
		t.Fatal("garble mutated the caller's buffer; replay after recovery would see corrupt bytes")
	}
}

func TestReaderCutTruncatesStream(t *testing.T) {
	src := strings.Repeat("x", 1000)
	in := mustInjector(t, &Plan{Seed: 1, Rules: []Rule{
		{Layer: LayerIngest, Op: OpRead, Kind: KindCut, After: 1, Max: 1, Bytes: 64},
	}})
	got, err := io.ReadAll(in.Reader(io.LimitReader(strings.NewReader(src), 1000)))
	if err != nil {
		t.Fatalf("ReadAll: %v", err)
	}
	if len(got) >= 1000 {
		t.Fatalf("cut stream delivered all %d bytes", len(got))
	}
	if !strings.HasPrefix(src, string(got)) {
		t.Fatal("cut stream delivered bytes that are not a prefix of the input")
	}
}

func TestMiddlewareErrorAndSever(t *testing.T) {
	in := mustInjector(t, &Plan{Seed: 1, Rules: []Rule{
		{Layer: LayerHTTP, Op: OpRequest, Kind: KindError, Max: 1},
		{Layer: LayerHTTP, Op: OpRequest, Kind: KindSever, After: 1, Max: 1, Bytes: 4},
	}})
	var bodyErr error
	var bodyGot []byte
	h := in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bodyGot, bodyErr = io.ReadAll(r.Body)
		w.WriteHeader(http.StatusOK)
	}))

	// Request 1: injected 503 with Retry-After, handler never runs.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/jobs", strings.NewReader("12345678")))
	if rr.Code != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", rr.Code)
	}
	if rr.Header().Get("Retry-After") == "" {
		t.Fatal("injected 503 missing Retry-After")
	}

	// Request 2: body severed after 4 bytes.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/jobs", strings.NewReader("12345678")))
	if bodyErr == nil {
		t.Fatalf("severed body read succeeded with %q", bodyGot)
	}
	if len(bodyGot) > 4 {
		t.Fatalf("severed body delivered %d bytes, want at most 4", len(bodyGot))
	}

	// Request 3: rules exhausted, passes through clean.
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("POST", "/v1/jobs", strings.NewReader("12345678")))
	if rr.Code != http.StatusOK || bodyErr != nil {
		t.Fatalf("clean request: status=%d bodyErr=%v", rr.Code, bodyErr)
	}
}

func TestMiddlewareResetAbortsHandler(t *testing.T) {
	in := mustInjector(t, &Plan{Seed: 1, Rules: []Rule{
		{Layer: LayerHTTP, Op: OpRequest, Kind: KindReset, Max: 1},
	}})
	h := in.Middleware(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer func() {
		if r := recover(); r != http.ErrAbortHandler {
			t.Fatalf("recover = %v, want http.ErrAbortHandler", r)
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/v1/status", nil))
	t.Fatal("reset fault did not abort the handler")
}

func TestPlanHas(t *testing.T) {
	p := &Plan{Rules: []Rule{{Layer: LayerIngest, Op: OpLine, Kind: KindCrash}}}
	if !p.Has(LayerIngest, OpLine, KindCrash) {
		t.Fatal("Has missed an armed rule")
	}
	if p.Has(LayerHTTP, OpRequest, KindError) {
		t.Fatal("Has reported an unarmed rule")
	}
}
