// Package faults is a deterministic, seed-driven fault injector. A
// FaultPlan (JSON, shipped in specs like drift config) compiles into an
// Injector whose per-rule RNGs are derived from the plan seed, so an
// identical plan produces the identical fault sequence on every run —
// chaos tests are replayable and CI can gate on the exact event log.
//
// Faults are consulted at "opportunities": each time a covered layer
// reaches a decision point (a transport frame, an ingest line, an HTTP
// request) it calls Decide, which counts the opportunity against every
// matching rule and reports which faults fire. The ordered event log
// (Events, OnEvent) is the determinism witness: two runs with the same
// plan over the same workload must produce byte-identical logs.
package faults

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"sync"
	"time"
)

// Layer, op, and kind names recognized in fault rules.
const (
	// LayerTransport covers the shard coordinator's worker links.
	LayerTransport = "transport"
	// LayerIngest covers the broker's NDJSON job stream.
	LayerIngest = "ingest"
	// LayerHTTP covers the HTTP control plane.
	LayerHTTP = "http"

	// OpConnect is a transport session establishment.
	OpConnect = "connect"
	// OpFrame is one transport reply frame.
	OpFrame = "frame"
	// OpLine is one ingest stream line (supervised path).
	OpLine = "line"
	// OpRead is one ingest byte-stream read (unsupervised path).
	OpRead = "read"
	// OpRequest is one HTTP request.
	OpRequest = "request"

	// KindPartition refuses connections to the matched hosts.
	KindPartition = "partition"
	// KindDelay stalls the operation for DelayMS.
	KindDelay = "delay"
	// KindReset kills the connection with an injected reset.
	KindReset = "reset"
	// KindDrop discards the frame (the reader waits for the next one).
	KindDrop = "drop"
	// KindDup replays the previous frame instead of reading a new one.
	KindDup = "dup"
	// KindCrash panics the ingest loop with a Crash value, simulating a
	// broker process death mid-stream.
	KindCrash = "crash"
	// KindGarble corrupts the line into invalid JSON.
	KindGarble = "garble"
	// KindCut truncates: a line loses its tail, a byte stream ends after
	// Bytes more bytes, an HTTP body dies after Bytes bytes.
	KindCut = "cut"
	// KindStall sleeps DelayMS before delivering (slow-loris input).
	KindStall = "stall"
	// KindError answers the HTTP request with an injected 503.
	KindError = "error"
	// KindSever makes the HTTP request body fail mid-read after Bytes.
	KindSever = "sever"
)

// validKinds maps layer → op → permitted kinds.
var validKinds = map[string]map[string][]string{
	LayerTransport: {
		OpConnect: {KindPartition},
		OpFrame:   {KindDelay, KindReset, KindDrop, KindDup},
	},
	LayerIngest: {
		OpLine: {KindCrash, KindGarble, KindCut, KindStall},
		OpRead: {KindCut, KindStall},
	},
	LayerHTTP: {
		OpRequest: {KindError, KindDelay, KindReset, KindSever},
	},
}

// Plan is a declarative fault schedule: a seed plus rules. It travels
// as JSON in spec files next to workloads and drift configs.
type Plan struct {
	// Seed derives every rule's RNG; the same seed replays the same
	// fault sequence.
	Seed int64 `json:"seed"`
	// Rules are consulted in order at each matching opportunity.
	Rules []Rule `json:"rules"`
}

// Rule arms one fault kind at one layer/op. The zero probability fires
// on every opportunity (after After, up to Max); a fractional P gates
// each opportunity on the rule's seeded RNG.
type Rule struct {
	// Layer is one of the Layer* constants.
	Layer string `json:"layer"`
	// Op is one of the Op* constants valid for the layer.
	Op string `json:"op"`
	// Kind is the fault to inject, valid for the layer/op pair.
	Kind string `json:"kind"`
	// P is the per-opportunity firing probability; 0 means always.
	P float64 `json:"p,omitempty"`
	// After skips the first After opportunities.
	After int `json:"after,omitempty"`
	// Max bounds total firings; 0 means unlimited.
	Max int `json:"max,omitempty"`
	// DelayMS is the injected latency for delay/stall kinds.
	DelayMS float64 `json:"delay_ms,omitempty"`
	// Bytes parameterizes cut/sever: how many further bytes survive.
	Bytes int64 `json:"bytes,omitempty"`
	// Targets restricts the rule to matching opportunity targets (host
	// addresses for transport, "METHOD /path" for HTTP). Empty matches
	// everything.
	Targets []string `json:"targets,omitempty"`
}

// validate checks the rule against the layer/op/kind matrix.
func (r *Rule) validate(i int) error {
	ops, ok := validKinds[r.Layer]
	if !ok {
		return fmt.Errorf("faults: rule %d: unknown layer %q", i, r.Layer)
	}
	kinds, ok := ops[r.Op]
	if !ok {
		return fmt.Errorf("faults: rule %d: layer %q has no op %q", i, r.Layer, r.Op)
	}
	found := false
	for _, k := range kinds {
		if k == r.Kind {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("faults: rule %d: kind %q not valid for %s/%s", i, r.Kind, r.Layer, r.Op)
	}
	if r.P < 0 || r.P > 1 {
		return fmt.Errorf("faults: rule %d: probability %g outside [0,1]", i, r.P)
	}
	if r.After < 0 || r.Max < 0 {
		return fmt.Errorf("faults: rule %d: negative after/max", i)
	}
	if r.DelayMS < 0 {
		return fmt.Errorf("faults: rule %d: negative delay", i)
	}
	if r.Bytes < 0 {
		return fmt.Errorf("faults: rule %d: negative byte count", i)
	}
	return nil
}

// ParsePlan decodes a plan, rejecting unknown fields so spec typos fail
// loudly instead of silently disarming a rule.
func ParsePlan(r io.Reader) (*Plan, error) {
	var p Plan
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("faults: decoding plan: %w", err)
	}
	for i := range p.Rules {
		if err := p.Rules[i].validate(i); err != nil {
			return nil, err
		}
	}
	return &p, nil
}

// LoadPlan reads a plan file.
func LoadPlan(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("faults: %w", err)
	}
	defer f.Close() //lint:allow errlint close of a read-only plan file cannot lose data
	p, err := ParsePlan(f)
	if err != nil {
		return nil, fmt.Errorf("faults: plan %s: %w", path, err)
	}
	return p, nil
}

// Has reports whether the plan arms the given layer/op/kind. The CLI
// uses it to refuse crash rules without a supervisor to recover them.
func (p *Plan) Has(layer, op, kind string) bool {
	for _, r := range p.Rules {
		if r.Layer == layer && r.Op == op && r.Kind == kind {
			return true
		}
	}
	return false
}

// Event is one fired fault in the injector's ordered log.
type Event struct {
	// Seq is the 1-based global firing order.
	Seq int `json:"seq"`
	// Layer, Op, Kind identify the rule that fired.
	Layer string `json:"layer"`
	Op    string `json:"op"`
	Kind  string `json:"kind"`
	// Target is the opportunity's target, when the layer has one.
	Target string `json:"target,omitempty"`
	// Opportunity is the rule's matching-opportunity count at firing.
	Opportunity int `json:"opportunity"`
}

// Injection is one fault Decide tells the caller to apply.
type Injection struct {
	// Kind is the fault kind to apply.
	Kind string
	// Delay is the injected latency for delay/stall kinds.
	Delay time.Duration
	// Bytes parameterizes cut/sever.
	Bytes int64
}

// ruleState is a rule plus its runtime counters and derived RNG.
type ruleState struct {
	Rule
	rng           *rand.Rand
	opportunities int
	fired         int
}

// Injector evaluates a compiled plan. It is safe for concurrent use;
// determinism of the event log requires that each rule's opportunity
// stream itself arrives in a deterministic order (single-threaded
// ingest, ordered frames per session).
type Injector struct {
	mu      sync.Mutex
	rules   []*ruleState
	seq     int
	events  []Event
	onEvent func(Event)
}

// NewInjector compiles a plan. Each rule gets its own RNG derived from
// the plan seed and the rule index, so reordering-independent rules
// draw independent, reproducible streams.
func NewInjector(p *Plan) (*Injector, error) {
	in := &Injector{}
	for i := range p.Rules {
		r := p.Rules[i]
		if err := r.validate(i); err != nil {
			return nil, err
		}
		seed := p.Seed ^ int64(uint64(i+1)*0x9E3779B97F4A7C15)
		in.rules = append(in.rules, &ruleState{Rule: r, rng: rand.New(rand.NewSource(seed))})
	}
	return in, nil
}

// SetOnEvent installs a callback invoked (under the injector lock) for
// every fired fault, in firing order. The serve loop streams these as
// JSONL so CI can diff fault sequences across runs.
func (in *Injector) SetOnEvent(fn func(Event)) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.onEvent = fn
}

// Events returns a copy of the ordered fired-fault log.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	return out
}

// Decide registers one opportunity at layer/op against every matching
// rule and returns the faults that fire, in rule order.
func (in *Injector) Decide(layer, op, target string) []Injection {
	in.mu.Lock()
	defer in.mu.Unlock()
	var out []Injection
	for _, rs := range in.rules {
		if rs.Layer != layer || rs.Op != op || !rs.matches(target) {
			continue
		}
		rs.opportunities++
		if rs.opportunities <= rs.After {
			continue
		}
		if rs.Max > 0 && rs.fired >= rs.Max {
			continue
		}
		if rs.P > 0 && rs.P < 1 && rs.rng.Float64() >= rs.P {
			continue
		}
		rs.fired++
		in.seq++
		ev := Event{
			Seq: in.seq, Layer: layer, Op: op, Kind: rs.Kind,
			Target: target, Opportunity: rs.opportunities,
		}
		in.events = append(in.events, ev)
		if in.onEvent != nil {
			in.onEvent(ev)
		}
		out = append(out, Injection{
			Kind:  rs.Kind,
			Delay: time.Duration(rs.DelayMS * float64(time.Millisecond)),
			Bytes: rs.Bytes,
		})
	}
	return out
}

func (rs *ruleState) matches(target string) bool {
	if len(rs.Targets) == 0 {
		return true
	}
	for _, t := range rs.Targets {
		if t == target {
			return true
		}
	}
	return false
}

// Crash is the panic value raised for an induced broker crash; the
// supervisor recognizes it and restarts from the latest checkpoint.
type Crash struct {
	// Pos is the 0-based stream position the crash fired at.
	Pos int64
}

// Error describes the induced crash.
func (c *Crash) Error() string {
	return fmt.Sprintf("faults: injected crash at stream position %d", c.Pos)
}

// Line applies ingest line rules to one raw stream line at position
// pos. Garble and cut return a modified copy (the caller's buffer is
// never mutated, so a replay after recovery sees the original bytes);
// stall sleeps; crash panics with a *Crash.
func (in *Injector) Line(pos int64, line []byte) []byte {
	for _, f := range in.Decide(LayerIngest, OpLine, "") {
		switch f.Kind {
		case KindCrash:
			panic(&Crash{Pos: pos})
		case KindStall:
			time.Sleep(f.Delay)
		case KindGarble:
			g := make([]byte, 0, len(line)+1)
			g = append(g, line[:len(line)/2]...)
			g = append(g, '{')
			line = g
		case KindCut:
			n := f.Bytes
			if n > int64(len(line)) {
				n = int64(len(line)) / 2
			}
			line = line[:n]
		}
	}
	return line
}

// Reader wraps an ingest byte stream with the plan's ingest/read rules:
// stall delays reads, cut ends the stream early (possibly mid-record —
// exactly the truncation the stream decoder must detect).
func (in *Injector) Reader(r io.Reader) io.Reader {
	return &faultReader{in: in, r: r}
}

type faultReader struct {
	in  *Injector
	r   io.Reader
	cut bool
	// remaining is the byte allowance left after a cut fired.
	remaining int64
}

func (fr *faultReader) Read(p []byte) (int, error) {
	if !fr.cut {
		for _, f := range fr.in.Decide(LayerIngest, OpRead, "") {
			switch f.Kind {
			case KindStall:
				time.Sleep(f.Delay)
			case KindCut:
				fr.cut = true
				fr.remaining = f.Bytes
			}
		}
	}
	if fr.cut {
		if fr.remaining <= 0 {
			return 0, io.EOF
		}
		if int64(len(p)) > fr.remaining {
			p = p[:fr.remaining]
		}
		n, err := fr.r.Read(p)
		fr.remaining -= int64(n)
		if err == nil && fr.remaining <= 0 {
			err = io.EOF
		}
		return n, err
	}
	return fr.r.Read(p)
}
