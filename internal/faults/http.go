package faults

import (
	"fmt"
	"io"
	"net/http"
	"time"
)

// severedBody delivers at most n bytes of the wrapped request body,
// then fails with a connection-reset-shaped read error — the server's
// view of a client dying mid-upload.
type severedBody struct {
	rc io.ReadCloser
	n  int64
}

func (s *severedBody) Read(p []byte) (int, error) {
	if s.n <= 0 {
		return 0, fmt.Errorf("faults: injected connection reset mid-body")
	}
	if int64(len(p)) > s.n {
		p = p[:s.n]
	}
	n, err := s.rc.Read(p)
	s.n -= int64(n)
	if err == nil && s.n <= 0 {
		err = fmt.Errorf("faults: injected connection reset mid-body")
	}
	return n, err
}

func (s *severedBody) Close() error { return s.rc.Close() }

// Middleware wraps an HTTP handler with the plan's http/request rules.
// The opportunity target is "METHOD /path", so rules can single out
// submit traffic without poisoning health probes. Kinds:
//
//   - error: answer 503 with a Retry-After header, request never
//     reaches the handler
//   - delay: sleep DelayMS before handling
//   - reset: abort the response mid-flight (client sees a dropped
//     connection)
//   - sever: the request body dies after Bytes bytes, exercising the
//     handler's atomic decode-then-submit path
func (in *Injector) Middleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		target := r.Method + " " + r.URL.Path
		for _, f := range in.Decide(LayerHTTP, OpRequest, target) {
			switch f.Kind {
			case KindError:
				w.Header().Set("Content-Type", "application/json")
				w.Header().Set("Retry-After", "1")
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "{%q:%q}\n", "error", "injected fault: service unavailable") //lint:allow errlint the injected error body is best-effort; the status line already went out
				return
			case KindDelay:
				time.Sleep(f.Delay)
			case KindReset:
				// The canonical way to make net/http kill the connection
				// without a reply.
				panic(http.ErrAbortHandler)
			case KindSever:
				r.Body = &severedBody{rc: r.Body, n: f.Bytes}
			}
		}
		next.ServeHTTP(w, r)
	})
}
